package comm

import (
	"fmt"
	"sort"
	"sync"
)

// Window is one fixed logical-time bucket of communication: the global
// sub-matrix of every event whose time falls in [Start, Start+windowSize),
// plus sparse per-region sub-matrices keyed by the reading access's innermost
// static region. Windows are bucketed by the globally-ordered access index
// the execution engine stamps on every access (one shared atomic clock), so
// any partition of the event stream — per analysis shard, per producer —
// assigns every event to the same window without coordination, and partial
// windows merge back by plain summation.
type Window struct {
	Start   uint64
	Global  *Matrix
	Regions map[int32]*Matrix
}

// AddWindow sums another window's matrices into w (the windows must share
// Start and dimension). Summation is commutative and associative, so shard
// partials merge in any order to the same result — the same argument that
// makes shard-partition and accuracy-monitor merges exact.
func (w *Window) AddWindow(o *Window) {
	w.Global.AddMatrix(o.Global)
	for region, m := range o.Regions {
		dst, ok := w.Regions[region]
		if !ok {
			dst = NewMatrix(m.N())
			w.Regions[region] = dst
		}
		dst.AddMatrix(m)
	}
}

// EqualWindow reports whether two windows hold identical matrices, global
// and per-region alike.
func (w *Window) EqualWindow(o *Window) bool {
	if w.Start != o.Start || !w.Global.Equal(o.Global) {
		return false
	}
	if len(w.Regions) != len(o.Regions) {
		return false
	}
	for region, m := range w.Regions {
		om, ok := o.Regions[region]
		if !ok || !m.Equal(om) {
			return false
		}
	}
	return true
}

// WindowSet accumulates time-windowed communication sub-matrices. It is safe
// for concurrent Observe calls (events are far rarer than accesses, so one
// mutex around the window map costs nothing measurable on the access hot
// path), and sets built from any partition of one event stream merge to the
// same result.
type WindowSet struct {
	threads int
	size    uint64

	mu      sync.Mutex
	wins    map[uint64]*Window
	maxTime uint64
}

// NewWindowSet builds an empty set with the given window length in
// logical-time units.
func NewWindowSet(threads int, windowSize uint64) (*WindowSet, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("comm: window set threads must be positive, got %d", threads)
	}
	if windowSize == 0 {
		return nil, fmt.Errorf("comm: window size must be positive")
	}
	return &WindowSet{threads: threads, size: windowSize, wins: make(map[uint64]*Window)}, nil
}

// Threads returns the matrix dimension.
func (ws *WindowSet) Threads() int { return ws.threads }

// WindowSize returns the configured window length.
func (ws *WindowSet) WindowSize() uint64 { return ws.size }

// Observe records one communication event into its time window. region is
// the reading access's innermost static region (a negative id — NoRegion —
// records only into the global sub-matrix). Events may arrive in any order.
func (ws *WindowSet) Observe(time uint64, region, src, dst int32, bytes uint64) {
	start := time / ws.size * ws.size
	ws.mu.Lock()
	w, ok := ws.wins[start]
	if !ok {
		w = &Window{Start: start, Global: NewMatrix(ws.threads), Regions: make(map[int32]*Matrix)}
		ws.wins[start] = w
	}
	if time > ws.maxTime {
		ws.maxTime = time
	}
	w.Global.Add(src, dst, bytes)
	if region >= 0 {
		rm, ok := w.Regions[region]
		if !ok {
			rm = NewMatrix(ws.threads)
			w.Regions[region] = rm
		}
		rm.Add(src, dst, bytes)
	}
	ws.mu.Unlock()
}

// WindowEvent is one communication event in the windowed layer's own terms
// (src/dst thread, the reading access's region, the global access index).
// Shard workers stage events in a private buffer and apply them with
// ObserveBatch, paying one lock per drained batch instead of one per event.
type WindowEvent struct {
	Time   uint64
	Region int32
	Src    int32
	Dst    int32
	Bytes  uint64
}

// ObserveBatch records a batch of events under one lock acquisition. Events
// from one detector batch are strongly time-clustered, so the per-event work
// reduces to a matrix add plus two cached pointer checks.
func (ws *WindowSet) ObserveBatch(evs []WindowEvent) {
	if len(evs) == 0 {
		return
	}
	ws.mu.Lock()
	var cw *Window
	var cwStart uint64
	var crM *Matrix
	crRegion := int32(-1)
	for _, ev := range evs {
		start := ev.Time / ws.size * ws.size
		if cw == nil || start != cwStart {
			w, ok := ws.wins[start]
			if !ok {
				w = &Window{Start: start, Global: NewMatrix(ws.threads), Regions: make(map[int32]*Matrix)}
				ws.wins[start] = w
			}
			cw, cwStart = w, start
			crRegion = -1
		}
		if ev.Time > ws.maxTime {
			ws.maxTime = ev.Time
		}
		cw.Global.Add(ev.Src, ev.Dst, ev.Bytes)
		if ev.Region >= 0 {
			if ev.Region != crRegion {
				rm, ok := cw.Regions[ev.Region]
				if !ok {
					rm = NewMatrix(ws.threads)
					cw.Regions[ev.Region] = rm
				}
				crM, crRegion = rm, ev.Region
			}
			crM.Add(ev.Src, ev.Dst, ev.Bytes)
		}
	}
	ws.mu.Unlock()
}

// MaxTime returns the largest event time observed so far.
func (ws *WindowSet) MaxTime() uint64 {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.maxTime
}

// Len returns the number of non-empty windows currently held.
func (ws *WindowSet) Len() int {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return len(ws.wins)
}

// MergeWindow sums one window into the set. Merging is off the access hot
// path, so the whole summation (including region-map inserts) stays under
// the set lock.
func (ws *WindowSet) MergeWindow(w *Window) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	dst, ok := ws.wins[w.Start]
	if !ok {
		ws.wins[w.Start] = w
		return
	}
	dst.AddWindow(w)
}

// Merge sums every window of other into ws. Merging the per-partition sets
// of any partition of one event stream, in any order, yields the set a
// single observer would have built.
func (ws *WindowSet) Merge(other *WindowSet) {
	other.mu.Lock()
	wins := make([]*Window, 0, len(other.wins))
	for _, w := range other.wins {
		wins = append(wins, w)
	}
	maxTime := other.maxTime
	other.mu.Unlock()
	for _, w := range wins {
		ws.MergeWindow(w)
	}
	ws.mu.Lock()
	if maxTime > ws.maxTime {
		ws.maxTime = maxTime
	}
	ws.mu.Unlock()
}

// Drain removes and returns every window wholly below the frontier
// (Start+windowSize <= frontier), sorted by Start. A frontier of ^uint64(0)
// drains everything.
func (ws *WindowSet) Drain(frontier uint64) []*Window {
	ws.mu.Lock()
	var out []*Window
	for start, w := range ws.wins {
		if start+ws.size <= frontier && start <= frontier {
			out = append(out, w)
			delete(ws.wins, start)
		}
	}
	ws.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Sorted returns the held windows in increasing Start order. The windows are
// shared, not copied; treat them as read-only unless the set is quiescent.
func (ws *WindowSet) Sorted() []*Window {
	ws.mu.Lock()
	out := make([]*Window, 0, len(ws.wins))
	for _, w := range ws.wins {
		out = append(out, w)
	}
	ws.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Equal reports whether two sets hold identical windows — the bit-identity
// check the sharded-vs-serial phase property tests pin.
func (ws *WindowSet) Equal(other *WindowSet) bool {
	a, b := ws.Sorted(), other.Sorted()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].EqualWindow(b[i]) {
			return false
		}
	}
	return true
}

// WindowCloser tracks which windows of a set of concurrently-filled
// WindowSets have been closed and emitted. Advance drains every source below
// a caller-supplied frontier (a logical time no future event can precede),
// merges the drained partials into one done-set, and emits each newly
// completed window exactly once, in increasing Start order.
//
// A window that reappears after its emission — possible only when per-source
// event order is not monotone in time, i.e. the parallel engine mode, where
// clock stamping and enqueueing are not jointly atomic — is still merged
// into the done-set (the final timeline is recomputed from complete merged
// windows) but is counted late rather than re-emitted, so a live consumer's
// window sequence stays ordered and duplicate-free.
type WindowCloser struct {
	mu      sync.Mutex
	done    *WindowSet
	emitted uint64 // every window with Start+size <= emitted has been emitted
	closed  uint64
	late    uint64
}

// NewWindowCloser builds a closer whose done-set uses the given dimensions.
func NewWindowCloser(threads int, windowSize uint64) (*WindowCloser, error) {
	done, err := NewWindowSet(threads, windowSize)
	if err != nil {
		return nil, err
	}
	return &WindowCloser{done: done}, nil
}

// Advance drains every source below frontier, merges the partials, and calls
// onClose (nil ok) for each newly completed window in Start order with the
// window and its exclusive end time. Returns the number of windows emitted.
// Calls are serialized internally, so one closer may be driven from both a
// periodic sampler and a final close path.
func (c *WindowCloser) Advance(frontier uint64, sources []*WindowSet, onClose func(w *Window, end uint64)) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	size := c.done.WindowSize()
	for _, src := range sources {
		for _, w := range src.Drain(frontier) {
			if w.Start+size <= c.emitted {
				c.late++
			}
			c.done.MergeWindow(w)
		}
	}
	n := 0
	for _, w := range c.done.Sorted() {
		end := w.Start + size
		if end <= c.emitted || end > frontier {
			continue
		}
		if onClose != nil {
			onClose(w, end)
		}
		n++
	}
	c.closed += uint64(n)
	if frontier > c.emitted {
		c.emitted = frontier
	}
	return n
}

// Done returns the merged set of every drained window. Complete once a final
// Advance with frontier ^uint64(0) has run and the sources are quiescent.
func (c *WindowCloser) Done() *WindowSet {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done
}

// Closed returns the number of windows emitted so far.
func (c *WindowCloser) Closed() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Late returns the number of drained partial windows that arrived after
// their window had already been emitted (possible only under non-monotone
// per-source event order, i.e. parallel engine mode).
func (c *WindowCloser) Late() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.late
}
