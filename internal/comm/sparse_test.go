package comm

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSparseBasics(t *testing.T) {
	s := NewSparse(8)
	s.Add(0, 1, 10)
	s.Add(0, 1, 5)
	s.Add(7, 3, 2)
	if s.At(0, 1) != 15 || s.At(7, 3) != 2 || s.At(1, 0) != 0 {
		t.Fatal("cells wrong")
	}
	if s.Total() != 17 || s.NonZeroCells() != 2 || s.N() != 8 {
		t.Fatalf("aggregates wrong: total=%d nz=%d", s.Total(), s.NonZeroCells())
	}
}

func TestSparseBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSparse(2).Add(2, 0, 1)
}

func TestNewSparseInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSparse(0)
}

func TestSparseDenseRoundTrip(t *testing.T) {
	f := func(vals []uint16) bool {
		n := 8
		dense := NewMatrix(n)
		sparse := NewSparse(n)
		for i, v := range vals {
			src, dst := int32(i%n), int32((i/n)%n)
			dense.Add(src, dst, uint64(v))
			sparse.Add(src, dst, uint64(v))
		}
		return sparse.Equal(dense) &&
			sparse.Dense().Equal(dense) &&
			FromDense(dense).Equal(dense)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSparseEqualRejects(t *testing.T) {
	s := NewSparse(4)
	s.Add(0, 1, 5)
	other := NewMatrix(4)
	if s.Equal(other) {
		t.Fatal("unequal matrices reported equal")
	}
	if s.Equal(nil) || s.Equal(NewMatrix(3)) {
		t.Fatal("nil / size mismatch accepted")
	}
	other.Add(0, 1, 5)
	if !s.Equal(other) {
		t.Fatal("equal matrices rejected")
	}
}

func TestSparseMemoryWinsOnSparsePatterns(t *testing.T) {
	// §VII claim: at high thread counts with O(n)-pair patterns (here a
	// ring), sparse storage beats dense by a wide margin.
	const n = 1024
	s := NewSparse(n)
	for i := int32(0); i < n; i++ {
		s.Add(i, (i+1)%n, 64)
	}
	sparseBytes := s.MemoryBytes()
	denseBytes := DenseMemoryBytes(n)
	if sparseBytes*10 > denseBytes {
		t.Fatalf("sparse %d not at least 10x smaller than dense %d for a ring", sparseBytes, denseBytes)
	}
}

func TestSparseDenseCrossover(t *testing.T) {
	// On a fully dense pattern the sparse form costs MORE per cell (map
	// overhead) — the trade-off is real, not free.
	const n = 16
	s := NewSparse(n)
	for i := int32(0); i < n; i++ {
		for j := int32(0); j < n; j++ {
			if i != j {
				s.Add(i, j, 1)
			}
		}
	}
	if s.MemoryBytes() <= DenseMemoryBytes(n) {
		t.Fatalf("dense pattern: sparse %d should exceed dense %d", s.MemoryBytes(), DenseMemoryBytes(n))
	}
}

func TestSparseConcurrentAdd(t *testing.T) {
	s := NewSparse(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 1000; i++ {
				s.Add(int32(w), int32(rng.Intn(8)), 1)
			}
		}(w)
	}
	wg.Wait()
	if s.Total() != 8000 {
		t.Fatalf("Total = %d, lost updates", s.Total())
	}
}

func BenchmarkSparseAdd(b *testing.B) {
	s := NewSparse(32)
	for i := 0; i < b.N; i++ {
		s.Add(int32(i&31), int32((i>>5)&31), 8)
	}
}

func BenchmarkDenseVsSparseAdd(b *testing.B) {
	b.Run("dense", func(b *testing.B) {
		m := NewMatrix(32)
		for i := 0; i < b.N; i++ {
			m.Add(int32(i&31), int32((i>>5)&31), 8)
		}
	})
	b.Run("sparse", func(b *testing.B) {
		m := NewSparse(32)
		for i := 0; i < b.N; i++ {
			m.Add(int32(i&31), int32((i>>5)&31), 8)
		}
	})
}
