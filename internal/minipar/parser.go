package minipar

import "fmt"

// Parse lexes and parses MiniPar source into an AST.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := checkProgram(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k TokKind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, fmt.Errorf("minipar: %s: expected %s, found %s", p.cur().Pos(), k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != TokEOF {
		switch p.cur().Kind {
		case TokArray:
			d, err := p.arrayDecl()
			if err != nil {
				return nil, err
			}
			prog.Arrays = append(prog.Arrays, d)
		case TokFunc:
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, fmt.Errorf("minipar: %s: expected array or func declaration, found %s", p.cur().Pos(), p.cur())
		}
	}
	return prog, nil
}

func (p *parser) arrayDecl() (ArrayDecl, error) {
	kw := p.next() // array
	name, err := p.expect(TokIdent)
	if err != nil {
		return ArrayDecl{}, err
	}
	if _, err := p.expect(TokLBracket); err != nil {
		return ArrayDecl{}, err
	}
	size, err := p.expect(TokInt)
	if err != nil {
		return ArrayDecl{}, err
	}
	if _, err := p.expect(TokRBracket); err != nil {
		return ArrayDecl{}, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return ArrayDecl{}, err
	}
	if size.Int <= 0 {
		return ArrayDecl{}, fmt.Errorf("minipar: %s: array %s has non-positive size %d", kw.Pos(), name.Text, size.Int)
	}
	return ArrayDecl{Name: name.Text, Size: size.Int, Line: kw.Line}, nil
}

func (p *parser) funcDecl() (FuncDecl, error) {
	kw := p.next() // func
	name, err := p.expect(TokIdent)
	if err != nil {
		return FuncDecl{}, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return FuncDecl{}, err
	}
	var params []string
	if p.cur().Kind != TokRParen {
		for {
			id, err := p.expect(TokIdent)
			if err != nil {
				return FuncDecl{}, err
			}
			params = append(params, id.Text)
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return FuncDecl{}, err
	}
	body, err := p.block()
	if err != nil {
		return FuncDecl{}, err
	}
	return FuncDecl{Name: name.Text, Params: params, Body: body, Line: kw.Line, RegionID: -1}, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var out []Stmt
	for p.cur().Kind != TokRBrace {
		if p.cur().Kind == TokEOF {
			return nil, fmt.Errorf("minipar: %s: unterminated block", p.cur().Pos())
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.next() // }
	return out, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case TokFor, TokParfor:
		return p.forStmt()
	case TokWhile:
		p.next()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.Line, RegionID: -1}, nil
	case TokIf:
		p.next()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.accept(TokElse) {
			els, err = p.block()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Line: t.Line}, nil
	case TokBarrier:
		p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BarrierStmt{Line: t.Line}, nil
	case TokWork:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &WorkStmt{Units: e, Line: t.Line}, nil
	case TokOut:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &OutStmt{Expr: e, Line: t.Line}, nil
	case TokCall:
		p.next()
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		var args []Expr
		if p.cur().Kind != TokRParen {
			for {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(TokComma) {
					break
				}
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &CallStmt{Name: name.Text, Args: args, Line: t.Line}, nil
	case TokLock:
		p.next()
		id, err := p.expr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &LockStmt{ID: id, Body: body, Line: t.Line}, nil
	case TokIdent:
		name := p.next()
		if p.accept(TokLBracket) {
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokAssign); err != nil {
				return nil, err
			}
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			return &StoreStmt{Array: name.Text, Index: idx, Expr: val, Line: t.Line}, nil
		}
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &AssignStmt{Name: name.Text, Expr: val, Line: t.Line}, nil
	default:
		return nil, fmt.Errorf("minipar: %s: unexpected %s at statement start", t.Pos(), t)
	}
}

func (p *parser) forStmt() (Stmt, error) {
	kw := p.next() // for | parfor
	v, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	from, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokDotDot); err != nil {
		return nil, err
	}
	to, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &ForStmt{
		Var: v.Text, From: from, To: to, Body: body,
		Parallel: kw.Kind == TokParfor, Line: kw.Line, RegionID: -1,
	}, nil
}

// Expression parsing: precedence climbing via the grammar's layers.

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokOrOr {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokAndAnd {
		p.next()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "&&", L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[TokKind]string{
	TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.cur().Kind]; ok {
		p.next()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().Kind {
		case TokPlus:
			op = "+"
		case TokMinus:
			op = "-"
		default:
			return l, nil
		}
		p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().Kind {
		case TokStar:
			op = "*"
		case TokSlash:
			op = "/"
		case TokPercent:
			op = "%"
		default:
			return l, nil
		}
		p.next()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) unary() (Expr, error) {
	switch p.cur().Kind {
	case TokMinus:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	case TokNot:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "!", X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.next()
		return &IntLit{Value: t.Int}, nil
	case TokTid:
		p.next()
		return &TidRef{}, nil
	case TokNThreads:
		p.next()
		return &NThreadsRef{}, nil
	case TokIdent:
		p.next()
		if p.accept(TokLBracket) {
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Array: t.Text, Index: idx}, nil
		}
		return &VarRef{Name: t.Text}, nil
	case TokLParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, fmt.Errorf("minipar: %s: unexpected %s in expression", t.Pos(), t)
	}
}
