// Package minipar implements the front end of the MiniPar language: a small
// C-like SPMD parallel language used to demonstrate the full compiler-based
// instrumentation pipeline of the paper (static loop annotation, probe
// insertion, native-style execution) without LLVM. Programs declare shared
// arrays and functions; every thread executes main; `parfor` loops block-
// partition their iteration space across threads, `for` loops replicate, and
// `barrier` synchronises.
//
// Grammar (EBNF):
//
//	program   = { arrayDecl | funcDecl } .
//	arrayDecl = "array" IDENT "[" INT "]" ";" .
//	funcDecl  = "func" IDENT "(" [ IDENT { "," IDENT } ] ")" block .
//	block     = "{" { stmt } "}" .
//	stmt      = IDENT "=" expr ";"                    (scalar assign)
//	          | IDENT "[" expr "]" "=" expr ";"       (array store)
//	          | "for" IDENT "=" expr ".." expr block
//	          | "parfor" IDENT "=" expr ".." expr block
//	          | "if" expr block [ "else" block ]
//	          | "while" expr block
//	          | "barrier" ";"
//	          | "work" expr ";"
//	          | "out" expr ";"
//	          | "call" IDENT "(" [ expr { "," expr } ] ")" ";"
//	          | "lock" expr block                     (critical section)
//	expr      = orExpr .
//	orExpr    = andExpr { "||" andExpr } .
//	andExpr   = cmpExpr { "&&" cmpExpr } .
//	cmpExpr   = addExpr [ ("=="|"!="|"<"|"<="|">"|">=") addExpr ] .
//	addExpr   = mulExpr { ("+"|"-") mulExpr } .
//	mulExpr   = unary { ("*"|"/"|"%") unary } .
//	unary     = [ "-" | "!" ] primary .
//	primary   = INT | "tid" | "nthreads" | IDENT [ "[" expr "]" ] | "(" expr ")" .
package minipar

import "fmt"

// TokKind enumerates token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokInt
	TokIdent
	// Keywords.
	TokArray
	TokFunc
	TokFor
	TokParfor
	TokIf
	TokElse
	TokWhile
	TokBarrier
	TokWork
	TokOut
	TokCall
	TokLock
	TokTid
	TokNThreads
	// Punctuation and operators.
	TokLBrace
	TokRBrace
	TokLParen
	TokRParen
	TokLBracket
	TokRBracket
	TokSemi
	TokComma
	TokAssign
	TokDotDot
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
	TokAndAnd
	TokOrOr
	TokNot
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokInt: "INT", TokIdent: "IDENT",
	TokArray: "array", TokFunc: "func", TokFor: "for", TokParfor: "parfor",
	TokIf: "if", TokElse: "else", TokWhile: "while", TokBarrier: "barrier",
	TokWork: "work", TokOut: "out", TokCall: "call", TokLock: "lock",
	TokTid: "tid", TokNThreads: "nthreads",
	TokLBrace: "{", TokRBrace: "}", TokLParen: "(", TokRParen: ")",
	TokLBracket: "[", TokRBracket: "]", TokSemi: ";", TokComma: ",",
	TokAssign: "=", TokDotDot: "..",
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/", TokPercent: "%",
	TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
	TokAndAnd: "&&", TokOrOr: "||", TokNot: "!",
}

// String returns the token kind's source form.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

var keywords = map[string]TokKind{
	"array": TokArray, "func": TokFunc, "for": TokFor, "parfor": TokParfor,
	"if": TokIf, "else": TokElse, "while": TokWhile, "barrier": TokBarrier,
	"work": TokWork, "out": TokOut, "call": TokCall, "lock": TokLock,
	"tid": TokTid, "nthreads": TokNThreads,
}

// Token is one lexeme with its source position.
type Token struct {
	Kind TokKind
	Text string
	Int  int64
	Line int
	Col  int
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case TokInt:
		return fmt.Sprintf("%d", t.Int)
	case TokIdent:
		return t.Text
	default:
		return t.Kind.String()
	}
}

// Pos renders the token's position.
func (t Token) Pos() string { return fmt.Sprintf("%d:%d", t.Line, t.Col) }
