package minipar

import "testing"

// FuzzParse checks that arbitrary input never panics the front end: it must
// either parse cleanly or return an error. Run with `go test -fuzz=FuzzParse`
// for a real campaign; `go test` exercises the seed corpus.
func FuzzParse(f *testing.F) {
	seeds := []string{
		sampleSrc,
		`func main() {}`,
		`array A[1]; func main() { A[0] = tid; }`,
		`func main() { parfor i = 0..10 { work i; } }`,
		`func main() { if 1 { } else { } }`,
		`func main() { lock 0 { } }`,
		`func main() { while 0 { } }`,
		`func main() { x = ((1+2)*3)/4 % 5; out x; }`,
		`// only a comment`,
		``,
		`array`,
		`func main( { }`,
		"func main() { x = 1 }\x00",
		`func main() { x = -----1; }`,
		`func main() { out 9223372036854775807; }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Fatal("nil program without error")
		}
	})
}

// FuzzLex checks the tokenizer in isolation.
func FuzzLex(f *testing.F) {
	for _, s := range []string{"a b c", "0..1", "== = ===", "//", "\t\n\r ", "_x9"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatal("token stream must end with EOF")
		}
	})
}
