package minipar

// Program is a parsed MiniPar compilation unit.
type Program struct {
	Arrays []ArrayDecl
	Funcs  []FuncDecl
}

// FindFunc returns the function with the given name.
func (p *Program) FindFunc(name string) (*FuncDecl, bool) {
	for i := range p.Funcs {
		if p.Funcs[i].Name == name {
			return &p.Funcs[i], true
		}
	}
	return nil, false
}

// FindArray returns the index of the named array declaration, or -1.
func (p *Program) FindArray(name string) int {
	for i := range p.Arrays {
		if p.Arrays[i].Name == name {
			return i
		}
	}
	return -1
}

// ArrayDecl is a shared-array declaration: `array A[1024];`.
type ArrayDecl struct {
	Name string
	Size int64
	Line int
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Params []string
	Body   []Stmt
	Line   int

	// RegionID is filled by the annotation pass (passes.Annotate).
	RegionID int32
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// AssignStmt is `x = expr;`.
type AssignStmt struct {
	Name string
	Expr Expr
	Line int
}

// StoreStmt is `A[idx] = expr;`.
type StoreStmt struct {
	Array string
	Index Expr
	Expr  Expr
	Line  int
}

// ForStmt is a sequential (replicated) or parallel (block-partitioned)
// counted loop over [From, To).
type ForStmt struct {
	Var      string
	From, To Expr
	Body     []Stmt
	Parallel bool
	Line     int

	// RegionID is the loop UID assigned by the annotation pass — the
	// MiniPar equivalent of the paper's Listing 1 metadata node.
	RegionID int32
}

// WhileStmt is `while cond { ... }`.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int

	// RegionID is the loop UID assigned by the annotation pass.
	RegionID int32
}

// IfStmt is `if cond { ... } [else { ... }]`.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// BarrierStmt is `barrier;`.
type BarrierStmt struct{ Line int }

// WorkStmt is `work expr;` — simulated uninstrumented computation.
type WorkStmt struct {
	Units Expr
	Line  int
}

// OutStmt is `out expr;` — appends a value to the run's output.
type OutStmt struct {
	Expr Expr
	Line int
}

// CallStmt is `call f(args);`.
type CallStmt struct {
	Name string
	Args []Expr
	Line int
}

// LockStmt is `lock id { ... }` — a critical section guarded by mutex id.
type LockStmt struct {
	ID   Expr
	Body []Stmt
	Line int
}

func (*AssignStmt) stmt()  {}
func (*StoreStmt) stmt()   {}
func (*ForStmt) stmt()     {}
func (*WhileStmt) stmt()   {}
func (*IfStmt) stmt()      {}
func (*BarrierStmt) stmt() {}
func (*WorkStmt) stmt()    {}
func (*OutStmt) stmt()     {}
func (*CallStmt) stmt()    {}
func (*LockStmt) stmt()    {}

// Expr is an expression node.
type Expr interface{ expr() }

// IntLit is an integer literal.
type IntLit struct{ Value int64 }

// VarRef reads a scalar local (or parameter).
type VarRef struct{ Name string }

// TidRef is the builtin `tid`.
type TidRef struct{}

// NThreadsRef is the builtin `nthreads`.
type NThreadsRef struct{}

// IndexExpr reads shared array element `A[idx]` (an instrumented load).
type IndexExpr struct {
	Array string
	Index Expr
}

// BinExpr is a binary operation.
type BinExpr struct {
	Op   string // + - * / % == != < <= > >= && ||
	L, R Expr
}

// UnaryExpr is negation or logical not.
type UnaryExpr struct {
	Op string // - !
	X  Expr
}

func (*IntLit) expr()      {}
func (*VarRef) expr()      {}
func (*TidRef) expr()      {}
func (*NThreadsRef) expr() {}
func (*IndexExpr) expr()   {}
func (*BinExpr) expr()     {}
func (*UnaryExpr) expr()   {}
