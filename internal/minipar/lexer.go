package minipar

import (
	"fmt"
	"strconv"
)

// Lex tokenizes MiniPar source. Comments run from "//" to end of line.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	emit := func(kind TokKind, text string, l, c int) {
		toks = append(toks, Token{Kind: kind, Text: text, Line: l, Col: c})
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case c >= '0' && c <= '9':
			l, cl := line, col
			j := i
			for j < n && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			v, err := strconv.ParseInt(src[i:j], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("minipar: %d:%d: bad integer %q: %w", l, cl, src[i:j], err)
			}
			toks = append(toks, Token{Kind: TokInt, Int: v, Line: l, Col: cl})
			advance(j - i)
		case isIdentStart(c):
			l, cl := line, col
			j := i
			for j < n && isIdentPart(src[j]) {
				j++
			}
			word := src[i:j]
			if kw, ok := keywords[word]; ok {
				emit(kw, word, l, cl)
			} else {
				emit(TokIdent, word, l, cl)
			}
			advance(j - i)
		default:
			l, cl := line, col
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "..":
				emit(TokDotDot, two, l, cl)
				advance(2)
				continue
			case "==":
				emit(TokEq, two, l, cl)
				advance(2)
				continue
			case "!=":
				emit(TokNe, two, l, cl)
				advance(2)
				continue
			case "<=":
				emit(TokLe, two, l, cl)
				advance(2)
				continue
			case ">=":
				emit(TokGe, two, l, cl)
				advance(2)
				continue
			case "&&":
				emit(TokAndAnd, two, l, cl)
				advance(2)
				continue
			case "||":
				emit(TokOrOr, two, l, cl)
				advance(2)
				continue
			}
			var kind TokKind
			switch c {
			case '{':
				kind = TokLBrace
			case '}':
				kind = TokRBrace
			case '(':
				kind = TokLParen
			case ')':
				kind = TokRParen
			case '[':
				kind = TokLBracket
			case ']':
				kind = TokRBracket
			case ';':
				kind = TokSemi
			case ',':
				kind = TokComma
			case '=':
				kind = TokAssign
			case '+':
				kind = TokPlus
			case '-':
				kind = TokMinus
			case '*':
				kind = TokStar
			case '/':
				kind = TokSlash
			case '%':
				kind = TokPercent
			case '<':
				kind = TokLt
			case '>':
				kind = TokGt
			case '!':
				kind = TokNot
			default:
				return nil, fmt.Errorf("minipar: %d:%d: unexpected character %q", l, cl, string(c))
			}
			emit(kind, string(c), l, cl)
			advance(1)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
