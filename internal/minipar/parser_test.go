package minipar

import (
	"strings"
	"testing"
)

const sampleSrc = `
// stencil demo
array A[64];
array B[64];

func main() {
  parfor i = 0..64 {
    A[i] = tid;
  }
  barrier;
  call smooth(3);
}

func smooth(rounds) {
  for r = 0..rounds {
    parfor i = 1..63 {
      B[i] = (A[i-1] + A[i] + A[i+1]) / 3;
      work 2;
    }
    barrier;
  }
  if tid == 0 {
    out B[32];
  }
}
`

func TestLexBasics(t *testing.T) {
	toks, err := Lex("parfor i = 0..10 { A[i] = i*2; } // c")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokParfor, TokIdent, TokAssign, TokInt, TokDotDot, TokInt,
		TokLBrace, TokIdent, TokLBracket, TokIdent, TokRBracket, TokAssign,
		TokIdent, TokStar, TokInt, TokSemi, TokRBrace, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("b at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestLexTwoCharOperators(t *testing.T) {
	toks, err := Lex("== != <= >= && || ..")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokEq, TokNe, TokLe, TokGe, TokAndAnd, TokOrOr, TokDotDot, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("a @ b"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := Lex("99999999999999999999"); err == nil {
		t.Error("overflow integer accepted")
	}
}

func TestParseSample(t *testing.T) {
	prog, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Arrays) != 2 || len(prog.Funcs) != 2 {
		t.Fatalf("decls: %d arrays %d funcs", len(prog.Arrays), len(prog.Funcs))
	}
	mainFn, ok := prog.FindFunc("main")
	if !ok || len(mainFn.Body) != 3 {
		t.Fatalf("main body: %v", mainFn)
	}
	pf, ok := mainFn.Body[0].(*ForStmt)
	if !ok || !pf.Parallel || pf.Var != "i" {
		t.Fatalf("first stmt: %#v", mainFn.Body[0])
	}
	smooth, _ := prog.FindFunc("smooth")
	if len(smooth.Params) != 1 || smooth.Params[0] != "rounds" {
		t.Fatalf("smooth params: %v", smooth.Params)
	}
	inner, ok := smooth.Body[0].(*ForStmt)
	if !ok || inner.Parallel {
		t.Fatalf("smooth outer loop: %#v", smooth.Body[0])
	}
	if prog.FindArray("A") != 0 || prog.FindArray("missing") != -1 {
		t.Fatal("FindArray wrong")
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse(`array A[4]; func main() { x = 1 + 2 * 3 < 10 && 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	as := prog.Funcs[0].Body[0].(*AssignStmt)
	// Top: &&
	and, ok := as.Expr.(*BinExpr)
	if !ok || and.Op != "&&" {
		t.Fatalf("top op: %#v", as.Expr)
	}
	cmp, ok := and.L.(*BinExpr)
	if !ok || cmp.Op != "<" {
		t.Fatalf("left of &&: %#v", and.L)
	}
	add, ok := cmp.L.(*BinExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("left of <: %#v", cmp.L)
	}
	mul, ok := add.R.(*BinExpr)
	if !ok || mul.Op != "*" {
		t.Fatalf("right of +: %#v", add.R)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no main":           `array A[4]; func f() {}`,
		"main with params":  `func main(x) {}`,
		"dup array":         `array A[4]; array A[4]; func main() {}`,
		"dup func":          `func main() {} func main() {}`,
		"zero array":        `array A[0]; func main() {}`,
		"undeclared array":  `func main() { A[0] = 1; }`,
		"undeclared read":   `array A[4]; func main() { A[0] = B[0]; }`,
		"unknown call":      `func main() { call f(); }`,
		"bad arity":         `func main() { call f(1); } func f() {}`,
		"unterminated":      `func main() {`,
		"stmt start":        `func main() { ..; }`,
		"missing semicolon": `func main() { x = 1 }`,
		"garbage top level": `banana`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestParseAllStatementForms(t *testing.T) {
	src := `
array A[8];
func main() {
  x = -3;
  y = !0;
  A[0] = x;
  if x < 0 { A[1] = 1; } else { A[1] = 2; }
  while x < 0 { x = x + 1; }
  for i = 0..4 { work i; }
  parfor j = 0..8 { A[j] = j; }
  lock 1 { A[2] = A[2] + 1; }
  barrier;
  out A[2];
  call helper(1, 2);
}
func helper(a, b) { A[a] = b; }
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := prog.FindFunc("main")
	if len(m.Body) != 11 {
		t.Fatalf("main has %d statements", len(m.Body))
	}
	if _, ok := m.Body[7].(*LockStmt); !ok {
		t.Fatalf("stmt 7: %#v", m.Body[7])
	}
}

func TestTokenStrings(t *testing.T) {
	if TokParfor.String() != "parfor" || TokEOF.String() != "EOF" {
		t.Error("token names wrong")
	}
	tok := Token{Kind: TokInt, Int: 42, Line: 3, Col: 7}
	if tok.String() != "42" || !strings.Contains(tok.Pos(), "3:7") {
		t.Error("token rendering wrong")
	}
	if TokKind(250).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestParseErrorBranches(t *testing.T) {
	// Each case aims a specific production's error path.
	cases := []string{
		`func main() { for = 0..1 { } }`,          // for: missing loop var
		`func main() { for i 0..1 { } }`,          // for: missing =
		`func main() { for i = ..1 { } }`,         // for: bad from-expr
		`func main() { for i = 0 1 { } }`,         // for: missing ..
		`func main() { for i = 0.. { } }`,         // for: bad to-expr
		`func main() { for i = 0..1 ( ) }`,        // for: missing block
		`func main() { x = 1 || ; }`,              // orExpr: bad rhs
		`func main() { x = 1 && ; }`,              // andExpr: bad rhs
		`func main() { x = 1 < ; }`,               // cmpExpr: bad rhs
		`func main() { x = 1 + ; }`,               // addExpr: bad rhs
		`func main() { x = 1 * ; }`,               // mulExpr: bad rhs
		`func main() { x = - ; }`,                 // unary: bad operand
		`func main() { x = ! ; }`,                 // unary: bad operand
		`func main() { x = (1; }`,                 // primary: unclosed paren
		`func main() { x = A[1; }`,                // primary: unclosed index
		`func main() { A[1 = 2; }`,                // store: unclosed index
		`func main() { while { } }`,               // while: bad cond
		`func main() { if { } }`,                  // if: bad cond
		`func main() { lock { } }`,                // lock: bad id
		`func main() { work ; }`,                  // work: bad expr
		`func main() { out ; }`,                   // out: bad expr
		`func main() { call f(1,; } func f(x) {}`, // call: bad arg list
		`func main() { call f(; } func f() {}`,    // call: unclosed args
		`array A[x]; func main() {}`,              // array: non-int size
		`array A; func main() {}`,                 // array: missing brackets
		`func (x) {}`,                             // func: missing name
		`func f(1) {}`,                            // func: bad param
		`func f(a {}`,                             // func: unclosed params
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}
