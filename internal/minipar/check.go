package minipar

import "fmt"

// checkProgram performs semantic validation: main exists and takes no
// parameters, array/function references resolve, arities match, and array
// names do not collide.
func checkProgram(p *Program) error {
	arrays := map[string]bool{}
	for _, a := range p.Arrays {
		if arrays[a.Name] {
			return fmt.Errorf("minipar: line %d: duplicate array %q", a.Line, a.Name)
		}
		arrays[a.Name] = true
	}
	funcs := map[string]*FuncDecl{}
	for i := range p.Funcs {
		f := &p.Funcs[i]
		if funcs[f.Name] != nil {
			return fmt.Errorf("minipar: line %d: duplicate function %q", f.Line, f.Name)
		}
		funcs[f.Name] = f
	}
	main, ok := funcs["main"]
	if !ok {
		return fmt.Errorf("minipar: program has no main function")
	}
	if len(main.Params) != 0 {
		return fmt.Errorf("minipar: main must take no parameters")
	}
	c := &checker{arrays: arrays, funcs: funcs}
	for i := range p.Funcs {
		if err := c.stmts(p.Funcs[i].Body); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	arrays map[string]bool
	funcs  map[string]*FuncDecl
}

func (c *checker) stmts(ss []Stmt) error {
	for _, s := range ss {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(s Stmt) error {
	switch st := s.(type) {
	case *AssignStmt:
		return c.expr(st.Expr, st.Line)
	case *StoreStmt:
		if !c.arrays[st.Array] {
			return fmt.Errorf("minipar: line %d: store to undeclared array %q", st.Line, st.Array)
		}
		if err := c.expr(st.Index, st.Line); err != nil {
			return err
		}
		return c.expr(st.Expr, st.Line)
	case *ForStmt:
		if err := c.expr(st.From, st.Line); err != nil {
			return err
		}
		if err := c.expr(st.To, st.Line); err != nil {
			return err
		}
		return c.stmts(st.Body)
	case *WhileStmt:
		if err := c.expr(st.Cond, st.Line); err != nil {
			return err
		}
		return c.stmts(st.Body)
	case *IfStmt:
		if err := c.expr(st.Cond, st.Line); err != nil {
			return err
		}
		if err := c.stmts(st.Then); err != nil {
			return err
		}
		return c.stmts(st.Else)
	case *BarrierStmt:
		return nil
	case *WorkStmt:
		return c.expr(st.Units, st.Line)
	case *OutStmt:
		return c.expr(st.Expr, st.Line)
	case *CallStmt:
		f, ok := c.funcs[st.Name]
		if !ok {
			return fmt.Errorf("minipar: line %d: call to undeclared function %q", st.Line, st.Name)
		}
		if len(st.Args) != len(f.Params) {
			return fmt.Errorf("minipar: line %d: %s takes %d arguments, got %d", st.Line, st.Name, len(f.Params), len(st.Args))
		}
		for _, a := range st.Args {
			if err := c.expr(a, st.Line); err != nil {
				return err
			}
		}
		return nil
	case *LockStmt:
		if err := c.expr(st.ID, st.Line); err != nil {
			return err
		}
		return c.stmts(st.Body)
	default:
		return fmt.Errorf("minipar: unknown statement %T", s)
	}
}

func (c *checker) expr(e Expr, line int) error {
	switch ex := e.(type) {
	case *IntLit, *VarRef, *TidRef, *NThreadsRef:
		return nil
	case *IndexExpr:
		if !c.arrays[ex.Array] {
			return fmt.Errorf("minipar: line %d: read of undeclared array %q", line, ex.Array)
		}
		return c.expr(ex.Index, line)
	case *BinExpr:
		if err := c.expr(ex.L, line); err != nil {
			return err
		}
		return c.expr(ex.R, line)
	case *UnaryExpr:
		return c.expr(ex.X, line)
	default:
		return fmt.Errorf("minipar: line %d: unknown expression %T", line, e)
	}
}
