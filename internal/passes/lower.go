package passes

import (
	"fmt"

	"commprof/internal/ir"
	"commprof/internal/minipar"
)

// Lower compiles an annotated AST (after Annotate) to the stack-machine IR.
// Loads and stores of shared arrays become OpLoadArr/OpStoreArr without
// probes; the Instrument pass selects which of them reach the profiler.
func Lower(p *minipar.Program) (*ir.Module, error) {
	m := &ir.Module{LockBase: 1 << 16}
	for _, a := range p.Arrays {
		m.Arrays = append(m.Arrays, ir.Array{Name: a.Name, Size: a.Size})
	}
	// Function indices must be known before lowering bodies (forward calls).
	for _, f := range p.Funcs {
		m.Funcs = append(m.Funcs, ir.Func{Name: f.Name, NumParams: len(f.Params), RegionID: f.RegionID})
	}
	for i := range p.Funcs {
		l := &lowerer{prog: p, mod: m, slots: map[string]int{}}
		if err := l.fn(&p.Funcs[i], &m.Funcs[i]); err != nil {
			return nil, err
		}
	}
	m.MainIndex = m.FindFunc("main")
	if m.MainIndex < 0 {
		return nil, fmt.Errorf("passes: no main function")
	}
	return m, nil
}

type lowerer struct {
	prog  *minipar.Program
	mod   *ir.Module
	code  []ir.Instr
	slots map[string]int
	next  int
	temps int
}

func (l *lowerer) emit(op ir.Op, a int64, line int) int {
	l.code = append(l.code, ir.Instr{Op: op, A: a, Line: line})
	return len(l.code) - 1
}

// slot returns the local slot of name, allocating one if needed.
func (l *lowerer) slot(name string) int {
	if s, ok := l.slots[name]; ok {
		return s
	}
	s := l.next
	l.slots[name] = s
	l.next++
	return s
}

// temp allocates an anonymous local slot.
func (l *lowerer) temp() int {
	l.temps++
	s := l.next
	l.next++
	return s
}

func (l *lowerer) fn(f *minipar.FuncDecl, out *ir.Func) error {
	if f.RegionID < 0 {
		return fmt.Errorf("passes: function %s not annotated; run Annotate first", f.Name)
	}
	l.emit(ir.OpRegionEnter, int64(f.RegionID), f.Line)
	// Prologue: caller pushed arguments left-to-right; pop them into the
	// parameter slots right-to-left.
	for i := range f.Params {
		l.slot(f.Params[i]) // reserve slots 0..n-1 in order
	}
	for i := len(f.Params) - 1; i >= 0; i-- {
		l.emit(ir.OpStoreLocal, int64(l.slots[f.Params[i]]), f.Line)
	}
	if err := l.stmts(f.Body); err != nil {
		return err
	}
	l.emit(ir.OpRegionExit, 0, f.Line)
	l.emit(ir.OpRet, 0, f.Line)
	out.Code = l.code
	out.NumLocals = l.next
	return nil
}

func (l *lowerer) stmts(ss []minipar.Stmt) error {
	for _, s := range ss {
		if err := l.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (l *lowerer) stmt(s minipar.Stmt) error {
	switch st := s.(type) {
	case *minipar.AssignStmt:
		if err := l.expr(st.Expr, st.Line); err != nil {
			return err
		}
		l.emit(ir.OpStoreLocal, int64(l.slot(st.Name)), st.Line)
		return nil

	case *minipar.StoreStmt:
		idx := l.prog.FindArray(st.Array)
		if idx < 0 {
			return fmt.Errorf("passes: line %d: unknown array %q", st.Line, st.Array)
		}
		if err := l.expr(st.Index, st.Line); err != nil {
			return err
		}
		if err := l.expr(st.Expr, st.Line); err != nil {
			return err
		}
		l.emit(ir.OpStoreArr, int64(idx), st.Line)
		return nil

	case *minipar.ForStmt:
		return l.forStmt(st)

	case *minipar.WhileStmt:
		l.emit(ir.OpRegionEnter, int64(st.RegionID), st.Line)
		cond := len(l.code)
		if err := l.expr(st.Cond, st.Line); err != nil {
			return err
		}
		jz := l.emit(ir.OpJumpZero, 0, st.Line)
		if err := l.stmts(st.Body); err != nil {
			return err
		}
		l.emit(ir.OpJump, int64(cond), st.Line)
		l.code[jz].A = int64(len(l.code))
		l.emit(ir.OpRegionExit, 0, st.Line)
		return nil

	case *minipar.IfStmt:
		if err := l.expr(st.Cond, st.Line); err != nil {
			return err
		}
		jz := l.emit(ir.OpJumpZero, 0, st.Line)
		if err := l.stmts(st.Then); err != nil {
			return err
		}
		if len(st.Else) == 0 {
			l.code[jz].A = int64(len(l.code))
			return nil
		}
		j := l.emit(ir.OpJump, 0, st.Line)
		l.code[jz].A = int64(len(l.code))
		if err := l.stmts(st.Else); err != nil {
			return err
		}
		l.code[j].A = int64(len(l.code))
		return nil

	case *minipar.BarrierStmt:
		l.emit(ir.OpBarrier, 0, st.Line)
		return nil

	case *minipar.WorkStmt:
		if err := l.expr(st.Units, st.Line); err != nil {
			return err
		}
		l.emit(ir.OpWork, 0, st.Line)
		return nil

	case *minipar.OutStmt:
		if err := l.expr(st.Expr, st.Line); err != nil {
			return err
		}
		l.emit(ir.OpOut, 0, st.Line)
		return nil

	case *minipar.CallStmt:
		fi := l.mod.FindFunc(st.Name)
		if fi < 0 {
			return fmt.Errorf("passes: line %d: unknown function %q", st.Line, st.Name)
		}
		for _, a := range st.Args {
			if err := l.expr(a, st.Line); err != nil {
				return err
			}
		}
		l.emit(ir.OpCall, int64(fi), st.Line)
		return nil

	case *minipar.LockStmt:
		if err := l.expr(st.ID, st.Line); err != nil {
			return err
		}
		l.emit(ir.OpLock, 0, st.Line)
		if err := l.stmts(st.Body); err != nil {
			return err
		}
		if err := l.expr(st.ID, st.Line); err != nil {
			return err
		}
		l.emit(ir.OpUnlock, 0, st.Line)
		return nil

	default:
		return fmt.Errorf("passes: unknown statement %T", s)
	}
}

// forStmt lowers counted loops. Sequential loops replicate the full range on
// every thread; parallel loops block-partition [from,to) by thread ID:
//
//	lo = from + (to-from)*tid/nthreads
//	hi = from + (to-from)*(tid+1)/nthreads
func (l *lowerer) forStmt(st *minipar.ForStmt) error {
	iSlot := l.slot(st.Var)
	limit := l.temp()

	if st.Parallel {
		fromT, spanT := l.temp(), l.temp()
		if err := l.expr(st.From, st.Line); err != nil {
			return err
		}
		l.emit(ir.OpStoreLocal, int64(fromT), st.Line)
		if err := l.expr(st.To, st.Line); err != nil {
			return err
		}
		l.emit(ir.OpLoadLocal, int64(fromT), st.Line)
		l.emit(ir.OpBin, ir.BinSub, st.Line)
		l.emit(ir.OpStoreLocal, int64(spanT), st.Line)

		// lo -> iSlot
		l.emit(ir.OpLoadLocal, int64(spanT), st.Line)
		l.emit(ir.OpTid, 0, st.Line)
		l.emit(ir.OpBin, ir.BinMul, st.Line)
		l.emit(ir.OpNThreads, 0, st.Line)
		l.emit(ir.OpBin, ir.BinDiv, st.Line)
		l.emit(ir.OpLoadLocal, int64(fromT), st.Line)
		l.emit(ir.OpBin, ir.BinAdd, st.Line)
		l.emit(ir.OpStoreLocal, int64(iSlot), st.Line)

		// hi -> limit
		l.emit(ir.OpLoadLocal, int64(spanT), st.Line)
		l.emit(ir.OpTid, 0, st.Line)
		l.emit(ir.OpPush, 1, st.Line)
		l.emit(ir.OpBin, ir.BinAdd, st.Line)
		l.emit(ir.OpBin, ir.BinMul, st.Line)
		l.emit(ir.OpNThreads, 0, st.Line)
		l.emit(ir.OpBin, ir.BinDiv, st.Line)
		l.emit(ir.OpLoadLocal, int64(fromT), st.Line)
		l.emit(ir.OpBin, ir.BinAdd, st.Line)
		l.emit(ir.OpStoreLocal, int64(limit), st.Line)
	} else {
		if err := l.expr(st.From, st.Line); err != nil {
			return err
		}
		l.emit(ir.OpStoreLocal, int64(iSlot), st.Line)
		if err := l.expr(st.To, st.Line); err != nil {
			return err
		}
		l.emit(ir.OpStoreLocal, int64(limit), st.Line)
	}

	l.emit(ir.OpRegionEnter, int64(st.RegionID), st.Line)
	cond := len(l.code)
	l.emit(ir.OpLoadLocal, int64(iSlot), st.Line)
	l.emit(ir.OpLoadLocal, int64(limit), st.Line)
	l.emit(ir.OpBin, ir.BinLt, st.Line)
	jz := l.emit(ir.OpJumpZero, 0, st.Line)
	if err := l.stmts(st.Body); err != nil {
		return err
	}
	l.emit(ir.OpLoadLocal, int64(iSlot), st.Line)
	l.emit(ir.OpPush, 1, st.Line)
	l.emit(ir.OpBin, ir.BinAdd, st.Line)
	l.emit(ir.OpStoreLocal, int64(iSlot), st.Line)
	l.emit(ir.OpJump, int64(cond), st.Line)
	l.code[jz].A = int64(len(l.code))
	l.emit(ir.OpRegionExit, 0, st.Line)
	return nil
}

func (l *lowerer) expr(e minipar.Expr, line int) error {
	switch ex := e.(type) {
	case *minipar.IntLit:
		l.emit(ir.OpPush, ex.Value, line)
	case *minipar.VarRef:
		s, ok := l.slots[ex.Name]
		if !ok {
			return fmt.Errorf("passes: line %d: variable %q used before assignment", line, ex.Name)
		}
		l.emit(ir.OpLoadLocal, int64(s), line)
	case *minipar.TidRef:
		l.emit(ir.OpTid, 0, line)
	case *minipar.NThreadsRef:
		l.emit(ir.OpNThreads, 0, line)
	case *minipar.IndexExpr:
		idx := l.prog.FindArray(ex.Array)
		if idx < 0 {
			return fmt.Errorf("passes: line %d: unknown array %q", line, ex.Array)
		}
		if err := l.expr(ex.Index, line); err != nil {
			return err
		}
		l.emit(ir.OpLoadArr, int64(idx), line)
	case *minipar.BinExpr:
		if err := l.expr(ex.L, line); err != nil {
			return err
		}
		if err := l.expr(ex.R, line); err != nil {
			return err
		}
		code, err := ir.BinOpCode(ex.Op)
		if err != nil {
			return err
		}
		l.emit(ir.OpBin, code, line)
	case *minipar.UnaryExpr:
		if err := l.expr(ex.X, line); err != nil {
			return err
		}
		if ex.Op == "-" {
			l.emit(ir.OpNeg, 0, line)
		} else {
			l.emit(ir.OpNot, 0, line)
		}
	default:
		return fmt.Errorf("passes: line %d: unknown expression %T", line, e)
	}
	return nil
}
