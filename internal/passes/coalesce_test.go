package passes

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"commprof/internal/comm"
	"commprof/internal/detect"
	"commprof/internal/exec"
	"commprof/internal/interp"
	"commprof/internal/ir"
	"commprof/internal/pipeline"
	"commprof/internal/sig"
	"commprof/internal/trace"
)

// shardReplay feeds a captured probe stream through the sharded analysis
// pipeline on exact per-shard backends and returns the resulting tree.
func shardReplay(t *testing.T, run miniParRun, threads, shards int) *comm.Tree {
	t.Helper()
	pe, err := pipeline.New(pipeline.Options{
		Shards: shards, Threads: threads, Table: run.table,
		NewBackend: pipeline.PerfectFactory(threads),
	})
	if err != nil {
		t.Fatal(err)
	}
	pe.ProcessStream(run.accesses)
	pe.Close()
	tree, err := pe.Tree()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// exampleSources returns the repository's MiniPar example programs, adding
// them to the differential corpus.
func exampleSources(t *testing.T) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, name := range []string{"stencil", "reduction", "pipeline"} {
		b, err := os.ReadFile(filepath.Join("..", "..", "testdata", name+".mp"))
		if err != nil {
			t.Fatalf("reading example program: %v", err)
		}
		out["testdata/"+name] = string(b)
	}
	return out
}

type miniParRun struct {
	tree    *comm.Tree
	detect  detect.Stats
	engine  exec.Stats
	static  CoalesceStats
	outputs []interp.Output
	// accesses is the probe stream the detector saw (for sharded replay).
	accesses []trace.Access
	table    *trace.Table
}

// runMiniParExact compiles and executes src on an exact (collision-free)
// backend under sync-only scheduling: a quantum no thread can exhaust, so
// threads interleave only at barriers and lock waits. Under that scheduling
// the coalescing pass's elisions are exact for arbitrary programs, which is
// what the differential tests pin.
func runMiniParExact(t *testing.T, src string, threads int, gran uint, coalesce bool) miniParRun {
	t.Helper()
	run, err := runExactErr(src, threads, gran, coalesce, 0)
	if err != nil {
		t.Fatalf("coalesce=%v: %v", coalesce, err)
	}
	return run
}

// runExactErr is the error-returning core of runMiniParExact, shared with the
// external facade test package via export_test.go and with FuzzCoalesce
// (which caps maxSteps; 0 keeps the interpreter default).
func runExactErr(src string, threads int, gran uint, coalesce bool, maxSteps uint64) (miniParRun, error) {
	mod, table, cs, err := CompileWith(src, Options{Coalesce: coalesce})
	if err != nil {
		return miniParRun{}, fmt.Errorf("compile: %w", err)
	}
	rt, err := interp.New(mod)
	if err != nil {
		return miniParRun{}, err
	}
	if maxSteps > 0 {
		rt.SetMaxSteps(maxSteps)
	}
	d, err := detect.New(detect.Options{
		Threads: threads, Backend: sig.NewPerfect(threads), Table: table,
		GranularityBits: gran,
	})
	if err != nil {
		return miniParRun{}, err
	}
	var stream []trace.Access
	inner := d.Probe()
	eng := exec.New(exec.Options{
		Threads: threads, Quantum: 1 << 30,
		Probe: func(a trace.Access) {
			stream = append(stream, a)
			inner(a)
		},
	})
	stats, err := rt.Run(eng)
	if err != nil {
		return miniParRun{}, fmt.Errorf("run: %w", err)
	}
	tree, err := d.Tree()
	if err != nil {
		return miniParRun{}, err
	}
	return miniParRun{
		tree: tree, detect: d.Stats(), engine: stats, static: cs,
		outputs: rt.Outputs(), accesses: stream, table: table,
	}, nil
}

// diffTrees compares every communication matrix of two trees (global,
// outside, and each region's own and cumulative) and returns a description
// of the first mismatch, or "".
func diffTrees(a, b *comm.Tree) string {
	if !a.Global.Equal(b.Global) {
		return fmt.Sprintf("global matrix differs:\n%v\nvs\n%v", a.Global.Rows(), b.Global.Rows())
	}
	if !a.Outside.Equal(b.Outside) {
		return "outside-region matrix differs"
	}
	type nodeMats struct{ own, cum *comm.Matrix }
	collect := func(tr *comm.Tree) map[int32]nodeMats {
		m := map[int32]nodeMats{}
		tr.Walk(func(n *comm.Node, _ int) {
			m[n.Region.ID] = nodeMats{n.Own, n.Cumulative}
		})
		return m
	}
	am, bm := collect(a), collect(b)
	if len(am) != len(bm) {
		return fmt.Sprintf("tree node count differs: %d vs %d", len(am), len(bm))
	}
	for id, av := range am {
		bv, ok := bm[id]
		if !ok {
			return fmt.Sprintf("region %d present in only one tree", id)
		}
		if !av.own.Equal(bv.own) {
			return fmt.Sprintf("region %d own matrix differs", id)
		}
		if !av.cum.Equal(bv.cum) {
			return fmt.Sprintf("region %d cumulative matrix differs", id)
		}
	}
	return ""
}

// diffRuns checks full observable equivalence of a coalesced and an
// uncoalesced run: identical communication matrices, detected-dependence
// stats, program outputs and engine scheduling (access counts and final
// clock), with the coalesced run emitting fewer (never more) probes.
func diffRuns(on, off miniParRun) string {
	if d := diffTrees(on.tree, off.tree); d != "" {
		return d
	}
	if on.detect.Detected != off.detect.Detected || on.detect.CommBytes != off.detect.CommBytes {
		return fmt.Sprintf("detection stats differ: on=%d deps/%dB off=%d deps/%dB",
			on.detect.Detected, on.detect.CommBytes, off.detect.Detected, off.detect.CommBytes)
	}
	onEng, offEng := on.engine, off.engine
	onEng.Elided, offEng.Elided = 0, 0
	if onEng != offEng {
		return fmt.Sprintf("engine stats differ (scheduling changed): on=%+v off=%+v", onEng, offEng)
	}
	if len(on.outputs) != len(off.outputs) {
		return fmt.Sprintf("output count differs: %d vs %d", len(on.outputs), len(off.outputs))
	}
	for i := range on.outputs {
		if on.outputs[i] != off.outputs[i] {
			return fmt.Sprintf("output %d differs: %+v vs %+v", i, on.outputs[i], off.outputs[i])
		}
	}
	if uint64(len(on.accesses))+on.engine.Elided != uint64(len(off.accesses)) {
		return fmt.Sprintf("probe accounting broken: %d emitted + %d elided != %d uncoalesced",
			len(on.accesses), on.engine.Elided, len(off.accesses))
	}
	return ""
}

// TestCoalesceDifferentialProperty is the pass's soundness wall: across the
// structured kernels and the repository's example programs, randomised
// granularity bits and thread counts, a coalesced run must be observably
// identical to an uncoalesced run on an exact backend — byte-equal
// communication matrices at every tree node, identical detected volumes,
// outputs and scheduling. The failure message carries the sampled
// configuration so a counterexample replays deterministically.
func TestCoalesceDifferentialProperty(t *testing.T) {
	const seed = 20150908 // any failure reproduces: the rng is per-program
	programs := exampleSources(t)
	for name, src := range coalesceKernels {
		programs[name] = src
	}
	i := 0
	for name, src := range programs {
		name, src := name, src
		i++
		t.Run(strings.ReplaceAll(name, "/", "_"), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed + int64(len(name))))
			for trial := 0; trial < 3; trial++ {
				threads := 2 << rng.Intn(3) // 2, 4, 8
				gran := uint(rng.Intn(7))   // byte .. cache line
				cfg := fmt.Sprintf("seed=%d program=%s trial=%d threads=%d granularity=%d",
					seed+int64(len(name)), name, trial, threads, gran)

				on := runMiniParExact(t, src, threads, gran, true)
				off := runMiniParExact(t, src, threads, gran, false)
				if d := diffRuns(on, off); d != "" {
					t.Fatalf("%s: coalesced run diverged: %s", cfg, d)
				}
				if off.engine.Elided != 0 {
					t.Fatalf("%s: uncoalesced run elided %d accesses", cfg, off.engine.Elided)
				}
				if off.static != (CoalesceStats{}) {
					t.Fatalf("%s: uncoalesced compile reported coalescing stats %+v", cfg, off.static)
				}
			}
		})
	}
}

// TestCoalesceKernelsElide pins that the pass actually bites on the
// structured corpus: every kernel must elide a measurable share of its
// probe stream (the BENCH_coalesce acceptance floor is 20% on fft and
// stencil), and the reduction kernel must exercise the once-per-loop-entry
// path.
func TestCoalesceKernelsElide(t *testing.T) {
	minShare := map[string]float64{"fft": 0.20, "stencil": 0.20, "reduction": 0.10}
	for name, src := range coalesceKernels {
		t.Run(name, func(t *testing.T) {
			run := runMiniParExact(t, src, 4, 0, true)
			if run.static.Elided+run.static.Once == 0 {
				t.Fatalf("no probes statically marked; stats %+v", run.static)
			}
			total := run.engine.Accesses
			share := float64(run.engine.Elided) / float64(total)
			if share < minShare[name] {
				t.Fatalf("elided %d of %d accesses (%.1f%%), want >= %.0f%%",
					run.engine.Elided, total, 100*share, 100*minShare[name])
			}
			if name == "reduction" && run.static.Once == 0 {
				t.Fatal("reduction kernel exercised no once-per-loop-entry probes")
			}
		})
	}
}

// TestCoalesceShardedIdentity extends the differential wall through the
// sharded analysis pipeline: the coalesced and uncoalesced probe streams,
// replayed through pipeline.Engine on exact per-shard backends at randomised
// shard counts, must produce byte-equal global matrices and trees.
func TestCoalesceShardedIdentity(t *testing.T) {
	const seed = 20150909
	rng := rand.New(rand.NewSource(seed))
	for name, src := range coalesceKernels {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			const threads = 4
			on := runMiniParExact(t, src, threads, 0, true)
			off := runMiniParExact(t, src, threads, 0, false)
			for trial := 0; trial < 3; trial++ {
				shards := 1 + rng.Intn(8)
				cfg := fmt.Sprintf("seed=%d program=%s trial=%d shards=%d", seed, name, trial, shards)
				onTree := shardReplay(t, on, threads, shards)
				offTree := shardReplay(t, off, threads, shards)
				if d := diffTrees(onTree, offTree); d != "" {
					t.Fatalf("%s: sharded replay diverged: %s", cfg, d)
				}
			}
		})
	}
}

// TestCoalesceBoundaries is the table of edge cases the pass must NOT
// coalesce across (and the sound cases it must): barrier boundaries, calls,
// intervening writes, granule aliasing and branch-local probes, asserted
// directly on the compiled IR's probe marks.
func TestCoalesceBoundaries(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// wantElided / wantOnce count marked probes in the whole module.
		wantElided, wantOnce int
	}{
		{
			// Both reads of G[5] must survive: the barrier between them is a
			// cross-thread visibility boundary.
			name: "barrier boundary",
			src: `array G[8];
func main() {
  x = G[5];
  barrier;
  y = G[5];
  out x + y;
}`,
			wantElided: 0,
		},
		{
			// A call may touch anything: both reads survive.
			name: "call boundary",
			src: `array G[8];
func main() {
  x = G[5];
  call touch();
  y = G[5];
  out x + y;
}
func touch() {
  G[5] = 1;
}`,
			wantElided: 0,
		},
		{
			// A write to the probed element between two reads keeps the
			// second read (the write starts a new epoch) but the read
			// directly after the write is covered by it.
			name: "intervening write",
			src: `array G[8];
func main() {
  x = G[5];
  G[5] = x + 1;
  y = G[5];
  out y;
}`,
			wantElided: 1, // only the re-read after the write
		},
		{
			// Writes to two different elements (one granule at coarse
			// granularity) must both survive, and the second write is not
			// covered by the first (different key).
			name: "granule aliasing writes",
			src: `array G[8];
func main() {
  G[0] = 1;
  G[1] = 2;
  G[0] = 3;
  out G[0];
}`,
			// G[0]=3: cover is W but a write to G[1] intervened (epoch
			// cleared); the final read of G[0] is covered by its write.
			wantElided: 1,
		},
		{
			// A same-element write pair with an intervening READ of another
			// element must keep the second write: at coarse granularity the
			// read may alias the written granule, and its reader-set mark
			// must be re-cleared.
			name: "write-over-write blocked by read",
			src: `array G[8];
func main() {
  G[0] = 1;
  x = G[4];
  G[0] = x;
  out G[0];
}`,
			wantElided: 1, // only the final re-read of G[0]
		},
		{
			// Straight-line duplicate reads in one statement collapse.
			name: "duplicate reads collapse",
			src: `array G[8];
func main() {
  x = G[3] * G[3] + G[3];
  out x;
}`,
			wantElided: 2,
		},
		{
			// Branch-local probes: coverage must not flow from the then
			// branch into the code after the if (the branch may not have
			// executed).
			name: "branch-local coverage",
			src: `array G[8];
func main() {
  if tid == 0 {
    x = G[2];
    out x;
  }
  y = G[2];
  out y;
}`,
			wantElided: 0,
		},
		{
			// Loop-invariant read in a store-free loop body: once per entry.
			name: "loop-invariant once",
			src: `array G[8];
func main() {
  s = 0;
  for i = 0..6 {
    s = s + G[2];
  }
  out s;
}`,
			wantOnce: 1,
		},
		{
			// An induction-variable-indexed access is not loop-invariant.
			name: "induction index kept",
			src: `array G[8];
func main() {
  s = 0;
  for i = 0..6 {
    s = s + G[i];
  }
  out s;
}`,
		},
		{
			// work can exhaust the scheduling quantum: it is a boundary, so
			// the repeated read survives and the loop is ineligible.
			name: "work boundary",
			src: `array G[8];
func main() {
  s = 0;
  for i = 0..6 {
    s = s + G[2];
    work 2;
  }
  out s;
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mod, _, cs, err := CompileWith(tc.src, Options{Coalesce: true})
			if err != nil {
				t.Fatal(err)
			}
			elided, once := 0, 0
			for _, f := range mod.Funcs {
				for _, in := range f.Code {
					if in.Elide {
						elided++
					}
					if in.OnceAnchor != 0 {
						once++
					}
				}
			}
			if elided != tc.wantElided || once != tc.wantOnce {
				t.Fatalf("marked %d elided / %d once, want %d / %d; stats %+v\n%s",
					elided, once, tc.wantElided, tc.wantOnce, cs, mod.Disassemble())
			}
			if cs.Elided != tc.wantElided || cs.Once != tc.wantOnce {
				t.Fatalf("stats %+v disagree with marks (%d elided / %d once)", cs, elided, once)
			}
			// Every case must also pass the differential check, aliasing
			// granularities included.
			for _, gran := range []uint{0, 3, 6} {
				on := runMiniParExact(t, tc.src, 2, gran, true)
				off := runMiniParExact(t, tc.src, 2, gran, false)
				if d := diffRuns(on, off); d != "" {
					t.Fatalf("granularity %d: coalesced run diverged: %s", gran, d)
				}
			}
		})
	}
}

// TestCoalesceDisassemblyMarks pins the human-readable probe annotations.
func TestCoalesceDisassemblyMarks(t *testing.T) {
	src := `array G[8];
func main() {
  x = G[3] + G[3];
  s = 0;
  for i = 0..4 {
    s = s + G[0];
  }
  out x + s;
}`
	mod, _, _, err := CompileWith(src, Options{Coalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	dis := mod.Disassemble()
	if !strings.Contains(dis, "!probe:elided") {
		t.Fatalf("no elided probe rendered:\n%s", dis)
	}
	if !strings.Contains(dis, "!probe:once@") {
		t.Fatalf("no once probe rendered:\n%s", dis)
	}
	if !strings.Contains(dis, " !probe\n") {
		t.Fatalf("no plain probe rendered:\n%s", dis)
	}
}

// TestCoalesceVerifierClean: coalescing is metadata-only, so the verifier
// must accept every coalesced module (also enforced by FuzzCoalesce).
func TestCoalesceVerifierClean(t *testing.T) {
	for name, src := range coalesceKernels {
		mod, _, _, err := CompileWith(src, Options{Coalesce: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := Verify(mod); err != nil {
			t.Fatalf("%s: coalesced module fails verification: %v", name, err)
		}
		for fi := range mod.Funcs {
			for pc, in := range mod.Funcs[fi].Code {
				if in.Elide && !in.Probed {
					t.Fatalf("%s: %s pc %d elided but unprobed", name, mod.Funcs[fi].Name, pc)
				}
				if in.OnceAnchor != 0 {
					if !in.Probed || in.Elide {
						t.Fatalf("%s: %s pc %d once-mark on non-probe or elided instr", name, mod.Funcs[fi].Name, pc)
					}
					a := int(in.OnceAnchor)
					if a <= 0 || a >= len(mod.Funcs[fi].Code) || mod.Funcs[fi].Code[a].Op != ir.OpRegionEnter {
						t.Fatalf("%s: %s pc %d anchor %d is not a region marker", name, mod.Funcs[fi].Name, pc, a)
					}
				}
			}
		}
	}
}
