package passes

// CoalesceKernels returns the structured MiniPar kernel corpus that carries
// the loop-level probe redundancy the coalescing pass targets: repeated
// same-element reads inside a statement (fft's butterfly), re-reads of the
// written element (stencil), and loop-invariant coefficient reads
// (reduction). The corpus is shared by the differential tests in this
// package, the commbench coalescing ablation (internal/experiments) and the
// scripts/bench.sh coalesce mode, so the acceptance numbers in
// BENCH_coalesce.json are measured on exactly the programs the soundness
// wall pins.
func CoalesceKernels() map[string]string {
	out := make(map[string]string, len(coalesceKernels))
	for k, v := range coalesceKernels {
		out[k] = v
	}
	return out
}

var coalesceKernels = map[string]string{
	"fft": `// Radix-2-style butterfly: each element pair is loaded repeatedly.
array Re[256];
array Im[256];

func main() {
  parfor i = 0..256 {
    Re[i] = i % 13;
    Im[i] = i % 7;
  }
  barrier;
  parfor i = 0..256 {
    tr = Re[i] * 3 - Im[i];
    ti = Re[i] + Im[i] * 3;
    Re[i] = Re[i] + tr;
    Im[i] = Im[i] + ti;
  }
  barrier;
  if tid == 0 {
    out Re[17] + Im[42];
  }
}
`,
	"stencil": `// Weighted 1-D stencil: the centre element and the per-thread
// weight are each read twice per iteration.
array G[300];
array Wt[64];

func main() {
  parfor i = 0..300 {
    G[i] = i % 17;
  }
  Wt[tid] = tid + 1;
  barrier;
  parfor i = 1..299 {
    s = (G[i-1] + G[i] + G[i+1]) * Wt[tid];
    G[i] = (s + G[i] * Wt[tid]) / 4;
  }
  barrier;
  if tid == 0 {
    out G[150];
  }
}
`,
	"reduction": `// Coefficient-weighted sum: the store-free inner loop re-reads
// the loop-invariant coefficient every iteration (once-per-entry elision).
array Val[512];
array Coef[64];
array Acc[64];

func main() {
  parfor i = 0..512 {
    Val[i] = i % 9;
  }
  Coef[tid] = tid + 2;
  barrier;
  blk = 512 / nthreads;
  lo = blk * tid;
  s = 0;
  for i = 0..blk {
    s = s + Val[lo + i] * Coef[tid];
  }
  Acc[tid] = s;
  barrier;
  if tid == 0 {
    t = 0;
    for k = 0..nthreads {
      t = t + Acc[k] * Coef[0];
    }
    out t;
  }
}
`,
}
