package passes

import (
	"fmt"
	"strconv"
	"strings"

	"commprof/internal/ir"
)

// Coalesce is the static access-coalescing pass: it runs after Instrument and
// marks probed accesses whose probes are provably redundant so the runtime
// can skip the analysis backend for them (the access itself still executes
// and still ticks the logical clock — see exec.Thread.ReadElided — so
// scheduling is bit-identical with the pass off).
//
// The pass is deliberately conservative and purely local:
//
//   - Within one basic block, a probed access is elided when an earlier access
//     in the block covers it: a read is covered by any prior same-address
//     access (read or write) by the same thread; a write is covered by a prior
//     same-address write with no intervening reads of any address (the reads
//     would otherwise need their reader-set marks re-cleared — PR 4's
//     fall-through rule). A kept write starts a new epoch: it clears all
//     coverage, which also makes the decision independent of the runtime
//     granularity (two addresses that alias into one granule can never both
//     carry coverage across a write).
//   - Addresses are compared symbolically: two accesses match only when their
//     index expressions are structurally identical and no local they mention
//     was stored to in between (SSA-style versioning), and no store could have
//     changed an array value the expressions load.
//   - Any instruction with cross-thread visibility — call, barrier, lock,
//     unlock, work (which can exhaust a scheduling quantum) — and any region
//     marker clears all coverage.
//   - For structurally simple innermost loops (straight-line body, no
//     boundary instructions), the block rule is extended across the back
//     edge: the loop span is simulated twice in sequence; a probe covered in
//     both simulations is elided outright, and a probe covered only in the
//     second (i.e. by the previous iteration) is marked once-per-loop-entry —
//     it fires on the first iteration and is elided on the rest, anchored at
//     the loop's OpRegionEnter.
//
// Only the probed access stream matters for soundness: unprobed accesses are
// invisible to the detector, so they contribute no coverage and clear none
// (though any store still invalidates loaded-value symbols).
func Coalesce(m *ir.Module) CoalesceStats {
	var st CoalesceStats
	for fi := range m.Funcs {
		coalesceFunc(m, &m.Funcs[fi], &st)
	}
	return st
}

// CoalesceStats summarises one run of the coalescing pass.
type CoalesceStats struct {
	// Elided counts probes marked statically redundant on every execution.
	Elided int
	// Once counts probes marked redundant on every loop iteration after the
	// first (fired once per loop entry).
	Once int
}

// kindCover records which access kind established coverage for a key.
type kindCover uint8

const (
	coverRead kindCover = iota + 1
	coverWrite
)

// simState is the symbolic per-straight-line-span simulation state.
type simState struct {
	stack []string
	// localVer versions local slots: a store bumps the version so stale
	// symbols never compare equal.
	localVer map[int64]int
	// storeCount versions loaded array values: any store (probed or not) or
	// boundary may change array contents, so value symbols embed the count.
	storeCount int
	// cover maps an address key to the kind of the covering access.
	cover map[string]kindCover
	// reads counts probed reads (kept or elided) in the span; writeReads
	// snapshots it at each covering write, so a later same-key write is
	// elidable only when no reads happened in between.
	reads      uint64
	writeReads map[string]uint64
	// opaque generates fresh symbols for unknown stack entries at span entry.
	opaque int
}

func newSimState(entryDepth int) *simState {
	s := &simState{
		localVer:   map[int64]int{},
		cover:      map[string]kindCover{},
		writeReads: map[string]uint64{},
	}
	for i := 0; i < entryDepth; i++ {
		s.stack = append(s.stack, s.fresh())
	}
	return s
}

func (s *simState) fresh() string {
	s.opaque++
	return "?" + strconv.Itoa(s.opaque)
}

func (s *simState) push(sym string) { s.stack = append(s.stack, sym) }

func (s *simState) pop() string {
	if len(s.stack) == 0 {
		// Defensive only: span entry depths come from the same abstract
		// interpretation the verifier runs, so underflow cannot happen on
		// lowered code.
		return s.fresh()
	}
	sym := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	return sym
}

// clearCoverage starts a new epoch: all coverage facts are dropped and value
// symbols are invalidated.
func (s *simState) clearCoverage() {
	for k := range s.cover {
		delete(s.cover, k)
	}
	for k := range s.writeReads {
		delete(s.writeReads, k)
	}
	s.storeCount++
}

// step simulates one instruction and reports whether a probed access at this
// instruction is covered (elidable). It must be called for every instruction
// of a straight-line span in order.
func (s *simState) step(m *ir.Module, in ir.Instr) (elide bool) {
	switch in.Op {
	case ir.OpPush:
		s.push("c" + strconv.FormatInt(in.A, 10))
	case ir.OpLoadLocal:
		s.push(fmt.Sprintf("l%d.%d", in.A, s.localVer[in.A]))
	case ir.OpStoreLocal:
		s.pop()
		s.localVer[in.A]++
	case ir.OpTid:
		s.push("tid")
	case ir.OpNThreads:
		s.push("nt")
	case ir.OpBin:
		r := s.pop()
		l := s.pop()
		s.push("(" + l + ir.BinOpName(in.A) + r + ")")
	case ir.OpNeg:
		s.push("(-" + s.pop() + ")")
	case ir.OpNot:
		s.push("(!" + s.pop() + ")")
	case ir.OpLoadArr:
		idx := s.pop()
		key := "A" + strconv.FormatInt(in.A, 10) + "[" + idx + "]"
		if in.Probed {
			s.reads++
			if s.cover[key] != 0 {
				elide = true
			} else {
				s.cover[key] = coverRead
			}
		}
		s.push("v" + strconv.Itoa(s.storeCount) + "(" + key + ")")
	case ir.OpStoreArr:
		s.pop() // value
		idx := s.pop()
		key := "A" + strconv.FormatInt(in.A, 10) + "[" + idx + "]"
		if in.Probed {
			if s.cover[key] == coverWrite && s.writeReads[key] == s.reads {
				elide = true
				s.storeCount++ // the store still changes memory
			} else {
				s.clearCoverage()
				s.cover[key] = coverWrite
				s.writeReads[key] = s.reads
			}
		} else {
			// Invisible to the detector: no coverage effect, but the store
			// still invalidates loaded values.
			s.storeCount++
		}
	case ir.OpJumpZero:
		s.pop()
	case ir.OpJump, ir.OpRet:
		// No stack effect.
	case ir.OpWork, ir.OpOut:
		s.pop()
		if in.Op == ir.OpWork {
			// Work can exhaust the scheduling quantum and yield mid-span.
			s.clearCoverage()
		}
	case ir.OpBarrier, ir.OpRegionEnter, ir.OpRegionExit:
		s.clearCoverage()
	case ir.OpLock, ir.OpUnlock:
		s.pop()
		s.clearCoverage()
	case ir.OpCall:
		for i := 0; i < m.Funcs[in.A].NumParams; i++ {
			s.pop()
		}
		s.clearCoverage()
	default:
		s.clearCoverage()
	}
	return elide
}

// coalesceFunc analyses one function and marks elidable probes in place.
func coalesceFunc(m *ir.Module, f *ir.Func, st *CoalesceStats) {
	probed := false
	for _, in := range f.Code {
		if in.Probed {
			probed = true
			break
		}
	}
	if !probed {
		return
	}
	depth, reach, ok := stackDepths(m, f)
	if !ok {
		return
	}
	leaders := blockLeaders(f)
	loops := eligibleLoops(f, leaders, depth)

	// Probes inside an eligible loop span are decided by the loop analysis,
	// which strictly subsumes the block rule there.
	inLoop := make([]bool, len(f.Code))
	for _, l := range loops {
		for pc := l.start; pc <= l.end; pc++ {
			inLoop[pc] = true
		}
	}

	// Block-local pass.
	var s *simState
	for pc := 0; pc < len(f.Code); pc++ {
		if leaders[pc] || s == nil {
			if !reach[pc] {
				s = nil
				continue
			}
			s = newSimState(depth[pc])
		}
		if s.step(m, f.Code[pc]) && !inLoop[pc] {
			f.Code[pc].Elide = true
			st.Elided++
		}
	}

	// Loop pass: simulate each eligible span twice in sequence.
	for _, l := range loops {
		s := newSimState(0)
		first := map[int]bool{}
		for pc := l.start; pc <= l.end; pc++ {
			first[pc] = s.step(m, f.Code[pc])
		}
		for pc := l.start; pc <= l.end; pc++ {
			if !s.step(m, f.Code[pc]) {
				continue
			}
			if first[pc] {
				f.Code[pc].Elide = true
				st.Elided++
			} else {
				anchor := l.start - 1
				if anchor <= 0 {
					// Cannot happen: the function's own region marker
					// occupies pc 0, so a loop header is never at pc 1.
					continue
				}
				f.Code[pc].OnceAnchor = int32(anchor)
				st.Once++
			}
		}
	}
}

// stackDepths runs the verifier's abstract stack interpretation, returning
// the entry depth and reachability of every pc. ok is false when the code is
// structurally inconsistent (the later Verify will reject it).
func stackDepths(m *ir.Module, f *ir.Func) (depth []int, reach []bool, ok bool) {
	n := len(f.Code)
	depth = make([]int, n)
	reach = make([]bool, n)
	type state struct{ pc, d int }
	work := []state{{0, f.NumParams}}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		if s.pc < 0 || s.pc >= n {
			continue
		}
		if reach[s.pc] {
			if depth[s.pc] != s.d {
				return nil, nil, false
			}
			continue
		}
		reach[s.pc] = true
		depth[s.pc] = s.d
		in := f.Code[s.pc]
		d := s.d + stackDelta(m, in)
		if d < 0 {
			return nil, nil, false
		}
		switch in.Op {
		case ir.OpJump:
			work = append(work, state{int(in.A), d})
		case ir.OpJumpZero:
			work = append(work, state{int(in.A), d}, state{s.pc + 1, d})
		case ir.OpRet:
		default:
			work = append(work, state{s.pc + 1, d})
		}
	}
	return depth, reach, true
}

// blockLeaders marks the first instruction of every basic block.
func blockLeaders(f *ir.Func) []bool {
	leaders := make([]bool, len(f.Code))
	if len(leaders) > 0 {
		leaders[0] = true
	}
	mark := func(pc int) {
		if pc >= 0 && pc < len(leaders) {
			leaders[pc] = true
		}
	}
	for pc, in := range f.Code {
		switch in.Op {
		case ir.OpJump, ir.OpJumpZero:
			mark(int(in.A))
			mark(pc + 1)
		case ir.OpRet:
			mark(pc + 1)
		}
	}
	return leaders
}

// loopSpan is an eligible innermost loop: Code[start..end] is the header
// condition plus straight-line body, end holds the back-edge jump, and
// Code[start-1] is the loop's OpRegionEnter (the once-per-entry anchor).
type loopSpan struct{ start, end int }

// eligibleLoops finds loops the cross-iteration rule may treat as straight
// lines: exactly one conditional exit to just past the back edge, no other
// jumps into or inside the span, no boundary instructions, and a region
// marker immediately before the header (every MiniPar for/parfor/while has
// one; anything else is not a surface loop).
func eligibleLoops(f *ir.Func, leaders []bool, depth []int) []loopSpan {
	var out []loopSpan
	for pc, in := range f.Code {
		if in.Op != ir.OpJump || int(in.A) >= pc {
			continue
		}
		start := int(in.A)
		if start < 1 || f.Code[start-1].Op != ir.OpRegionEnter || depth[start] != 0 {
			continue
		}
		jz := -1
		ok := true
		for p := start; p < pc && ok; p++ {
			switch f.Code[p].Op {
			case ir.OpJump, ir.OpRet:
				ok = false
			case ir.OpJumpZero:
				if jz >= 0 || int(f.Code[p].A) != pc+1 {
					ok = false
				}
				jz = p
			case ir.OpCall, ir.OpBarrier, ir.OpLock, ir.OpUnlock, ir.OpWork,
				ir.OpRegionEnter, ir.OpRegionExit:
				ok = false
			}
		}
		if !ok || jz < 0 {
			continue
		}
		// No jump elsewhere in the function may target the inside of the
		// span (the body start after the conditional exit is expected).
		for p := start + 1; p <= pc && ok; p++ {
			if leaders[p] && p != jz+1 {
				ok = false
			}
		}
		if ok {
			out = append(out, loopSpan{start, pc})
		}
	}
	return out
}

// CoalescedDisassembly is a debugging helper: the module disassembly with a
// trailing per-function elision summary.
func CoalescedDisassembly(m *ir.Module) string {
	var b strings.Builder
	b.WriteString(m.Disassemble())
	for _, f := range m.Funcs {
		el, once := 0, 0
		for _, in := range f.Code {
			if in.Elide {
				el++
			}
			if in.OnceAnchor != 0 {
				once++
			}
		}
		if el+once > 0 {
			fmt.Fprintf(&b, "; %s: %d elided, %d once-per-loop\n", f.Name, el, once)
		}
	}
	return b.String()
}
