package passes

import "commprof/internal/ir"

// Instrument marks shared-memory instructions with probes so the runtime
// reports them to the profiler. Per the paper's §IV-A, the source can be
// decomposed into code that must be analysed and code that should not be:
// when only is non-nil, probes are inserted solely in the named functions,
// eliminating unnecessary analysis elsewhere; a nil only instruments the
// whole program. It returns the number of probes inserted.
func Instrument(m *ir.Module, only map[string]bool) int {
	probes := 0
	for fi := range m.Funcs {
		f := &m.Funcs[fi]
		if only != nil && !only[f.Name] {
			continue
		}
		for i := range f.Code {
			switch f.Code[i].Op {
			case ir.OpLoadArr, ir.OpStoreArr:
				if !f.Code[i].Probed {
					f.Code[i].Probed = true
					probes++
				}
			}
		}
	}
	return probes
}

// ProbeCount reports how many instructions currently carry probes.
func ProbeCount(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		for _, in := range f.Code {
			if in.Probed {
				n++
			}
		}
	}
	return n
}
