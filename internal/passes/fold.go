package passes

import "commprof/internal/minipar"

// FoldConstants rewrites constant subexpressions of the AST in place:
// binary and unary operations whose operands are integer literals become
// literals. Division and modulo by a constant zero are left unfolded so the
// error surfaces at runtime with its source position, matching the
// interpreter's behaviour for dynamic zero divisors.
func FoldConstants(p *minipar.Program) {
	for i := range p.Funcs {
		foldStmts(p.Funcs[i].Body)
	}
}

func foldStmts(ss []minipar.Stmt) {
	for _, s := range ss {
		switch st := s.(type) {
		case *minipar.AssignStmt:
			st.Expr = foldExpr(st.Expr)
		case *minipar.StoreStmt:
			st.Index = foldExpr(st.Index)
			st.Expr = foldExpr(st.Expr)
		case *minipar.ForStmt:
			st.From = foldExpr(st.From)
			st.To = foldExpr(st.To)
			foldStmts(st.Body)
		case *minipar.WhileStmt:
			st.Cond = foldExpr(st.Cond)
			foldStmts(st.Body)
		case *minipar.IfStmt:
			st.Cond = foldExpr(st.Cond)
			foldStmts(st.Then)
			foldStmts(st.Else)
		case *minipar.WorkStmt:
			st.Units = foldExpr(st.Units)
		case *minipar.OutStmt:
			st.Expr = foldExpr(st.Expr)
		case *minipar.CallStmt:
			for i := range st.Args {
				st.Args[i] = foldExpr(st.Args[i])
			}
		case *minipar.LockStmt:
			st.ID = foldExpr(st.ID)
			foldStmts(st.Body)
		}
	}
}

func foldExpr(e minipar.Expr) minipar.Expr {
	switch ex := e.(type) {
	case *minipar.IndexExpr:
		ex.Index = foldExpr(ex.Index)
		return ex
	case *minipar.UnaryExpr:
		ex.X = foldExpr(ex.X)
		if lit, ok := ex.X.(*minipar.IntLit); ok {
			switch ex.Op {
			case "-":
				return &minipar.IntLit{Value: -lit.Value}
			case "!":
				if lit.Value == 0 {
					return &minipar.IntLit{Value: 1}
				}
				return &minipar.IntLit{Value: 0}
			}
		}
		return ex
	case *minipar.BinExpr:
		ex.L = foldExpr(ex.L)
		ex.R = foldExpr(ex.R)
		l, lok := ex.L.(*minipar.IntLit)
		r, rok := ex.R.(*minipar.IntLit)
		if !lok || !rok {
			return ex
		}
		b := func(v bool) *minipar.IntLit {
			if v {
				return &minipar.IntLit{Value: 1}
			}
			return &minipar.IntLit{Value: 0}
		}
		switch ex.Op {
		case "+":
			return &minipar.IntLit{Value: l.Value + r.Value}
		case "-":
			return &minipar.IntLit{Value: l.Value - r.Value}
		case "*":
			return &minipar.IntLit{Value: l.Value * r.Value}
		case "/":
			if r.Value == 0 {
				return ex
			}
			return &minipar.IntLit{Value: l.Value / r.Value}
		case "%":
			if r.Value == 0 {
				return ex
			}
			return &minipar.IntLit{Value: l.Value % r.Value}
		case "==":
			return b(l.Value == r.Value)
		case "!=":
			return b(l.Value != r.Value)
		case "<":
			return b(l.Value < r.Value)
		case "<=":
			return b(l.Value <= r.Value)
		case ">":
			return b(l.Value > r.Value)
		case ">=":
			return b(l.Value >= r.Value)
		case "&&":
			return b(l.Value != 0 && r.Value != 0)
		case "||":
			return b(l.Value != 0 || r.Value != 0)
		}
		return ex
	default:
		return e
	}
}
