package passes

import (
	"strings"
	"testing"

	"commprof/internal/ir"
	"commprof/internal/minipar"
	"commprof/internal/trace"
)

const pipelineSrc = `
array A[32];
func main() {
  parfor i = 0..32 {
    A[i] = i * 2;
    for j = 0..2 {
      A[i] = A[i] + j;
    }
  }
  barrier;
  call finish();
}
func finish() {
  while 0 { work 1; }
  out A[0];
}
`

func mustParse(t *testing.T, src string) *minipar.Program {
	t.Helper()
	p, err := minipar.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAnnotateAssignsLoopUIDs(t *testing.T) {
	prog := mustParse(t, pipelineSrc)
	table, err := Annotate(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Regions: main(func), main#parfor0(loop), main#for1(loop, nested),
	// finish(func), finish#while0(loop).
	if table.Len() != 5 {
		t.Fatalf("table has %d regions:\n%+v", table.Len(), table.Regions)
	}
	mainFn, _ := prog.FindFunc("main")
	outer := mainFn.Body[0].(*minipar.ForStmt)
	if outer.RegionID < 0 {
		t.Fatal("outer loop not annotated")
	}
	inner := outer.Body[1].(*minipar.ForStmt)
	if inner.RegionID < 0 {
		t.Fatal("inner loop not annotated")
	}
	// Nesting: inner's parent is outer; outer's parent is main.
	if got := table.Parent(inner.RegionID); got != outer.RegionID {
		t.Fatalf("inner parent = %d, want %d", got, outer.RegionID)
	}
	if got := table.Parent(outer.RegionID); got != mainFn.RegionID {
		t.Fatalf("outer parent = %d, want %d", got, mainFn.RegionID)
	}
	if got := table.ParentLoop(inner.RegionID); got != outer.RegionID {
		t.Fatalf("ParentLoop = %d", got)
	}
	reg := table.MustRegion(outer.RegionID)
	if reg.Kind != trace.LoopRegion || !strings.Contains(reg.Name, "parfor") {
		t.Fatalf("outer region: %+v", reg)
	}
}

func TestFoldConstants(t *testing.T) {
	prog := mustParse(t, `array A[4]; func main() { x = 2*3+4; y = -(1+1); z = 1 < 2; A[1+1] = x; if 4/0 == 0 { } }`)
	FoldConstants(prog)
	body := prog.Funcs[0].Body
	if lit := body[0].(*minipar.AssignStmt).Expr.(*minipar.IntLit); lit.Value != 10 {
		t.Fatalf("x = %d", lit.Value)
	}
	if lit := body[1].(*minipar.AssignStmt).Expr.(*minipar.IntLit); lit.Value != -2 {
		t.Fatalf("y = %d", lit.Value)
	}
	if lit := body[2].(*minipar.AssignStmt).Expr.(*minipar.IntLit); lit.Value != 1 {
		t.Fatalf("z = %d", lit.Value)
	}
	if lit := body[3].(*minipar.StoreStmt).Index.(*minipar.IntLit); lit.Value != 2 {
		t.Fatalf("store index = %d", lit.Value)
	}
	// Division by constant zero must NOT fold (runtime error preserved).
	cond := body[4].(*minipar.IfStmt).Cond.(*minipar.BinExpr)
	if _, folded := cond.L.(*minipar.IntLit); folded {
		t.Fatal("4/0 was folded away")
	}
}

func TestLowerRequiresAnnotation(t *testing.T) {
	prog := mustParse(t, `func main() { for i = 0..2 { work 1; } }`)
	if _, err := Lower(prog); err == nil {
		t.Fatal("lowering unannotated program must fail")
	}
}

func TestLowerUndefinedVariable(t *testing.T) {
	prog := mustParse(t, `func main() { x = y; }`)
	if _, err := Annotate(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := Lower(prog); err == nil || !strings.Contains(err.Error(), "before assignment") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompilePipeline(t *testing.T) {
	mod, table, err := Compile(pipelineSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 5 {
		t.Fatalf("regions = %d", table.Len())
	}
	if len(mod.Funcs) != 2 || mod.MainIndex != 0 {
		t.Fatalf("module shape: %d funcs, main %d", len(mod.Funcs), mod.MainIndex)
	}
	// Every array access must be probed (whole-program instrumentation).
	loads, stores, probed := 0, 0, 0
	for _, f := range mod.Funcs {
		for _, in := range f.Code {
			switch in.Op {
			case ir.OpLoadArr:
				loads++
			case ir.OpStoreArr:
				stores++
			}
			if in.Probed {
				probed++
			}
		}
	}
	if probed != loads+stores || probed == 0 {
		t.Fatalf("probes %d, loads %d, stores %d", probed, loads, stores)
	}
	dis := mod.Disassemble()
	for _, want := range []string{"func main", "loadarr", "!probe", "regenter"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}

func TestSelectiveInstrumentation(t *testing.T) {
	prog := mustParse(t, pipelineSrc)
	if _, err := Annotate(prog); err != nil {
		t.Fatal(err)
	}
	mod, err := Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	n := Instrument(mod, map[string]bool{"finish": true})
	if n == 0 {
		t.Fatal("no probes inserted")
	}
	// main's accesses must be unprobed.
	mi := mod.FindFunc("main")
	for _, in := range mod.Funcs[mi].Code {
		if in.Probed {
			t.Fatal("main instrumented despite selective set")
		}
	}
	if ProbeCount(mod) != n {
		t.Fatalf("ProbeCount %d != inserted %d", ProbeCount(mod), n)
	}
	// Idempotent: re-instrumenting inserts nothing new.
	if again := Instrument(mod, map[string]bool{"finish": true}); again != 0 {
		t.Fatalf("re-instrumentation inserted %d probes", again)
	}
}

func TestVerifyAcceptsCompiledPrograms(t *testing.T) {
	srcs := []string{
		pipelineSrc,
		`func main() { x = 1; if x { out x; } else { out 0; } }`,
		`array A[4]; func main() { lock 2 { A[0] = A[0] + 1; } }`,
		`func main() { call f(1,2,3); } func f(a,b,c) { out a+b+c; }`,
	}
	for i, src := range srcs {
		if _, _, err := Compile(src, nil); err != nil {
			t.Errorf("program %d failed: %v", i, err)
		}
	}
}

func TestVerifyCatchesCorruptIR(t *testing.T) {
	mod, _, err := Compile(`func main() { out 1; }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: jump out of range.
	bad := *mod
	bad.Funcs = append([]ir.Func(nil), mod.Funcs...)
	bad.Funcs[0].Code = append([]ir.Instr(nil), mod.Funcs[0].Code...)
	bad.Funcs[0].Code[0] = ir.Instr{Op: ir.OpJump, A: 999}
	if err := Verify(&bad); err == nil {
		t.Error("out-of-range jump accepted")
	}
	// Corrupt: stack underflow.
	bad2 := *mod
	bad2.Funcs = append([]ir.Func(nil), mod.Funcs...)
	bad2.Funcs[0].Code = []ir.Instr{{Op: ir.OpBin, A: ir.BinAdd}, {Op: ir.OpRet}}
	if err := Verify(&bad2); err == nil {
		t.Error("stack underflow accepted")
	}
	// Corrupt: leftover stack at return.
	bad3 := *mod
	bad3.Funcs = append([]ir.Func(nil), mod.Funcs...)
	bad3.Funcs[0].Code = []ir.Instr{{Op: ir.OpPush, A: 1}, {Op: ir.OpRet}}
	if err := Verify(&bad3); err == nil {
		t.Error("unbalanced stack at return accepted")
	}
	// Corrupt: bad local slot.
	bad4 := *mod
	bad4.Funcs = append([]ir.Func(nil), mod.Funcs...)
	bad4.Funcs[0].Code = []ir.Instr{{Op: ir.OpLoadLocal, A: 99}, {Op: ir.OpOut}, {Op: ir.OpRet}}
	if err := Verify(&bad4); err == nil {
		t.Error("bad local slot accepted")
	}
}

func TestCompileRejectsParseErrors(t *testing.T) {
	if _, _, err := Compile("this is not minipar", nil); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLowerErrorPaths(t *testing.T) {
	// Constructions that parse and annotate but fail lowering: unknown
	// variable usage in every statement position that evaluates expressions.
	cases := []string{
		`func main() { work u; }`,
		`func main() { out u; }`,
		`func main() { for i = u..1 { } }`,
		`func main() { for i = 0..u { } }`,
		`func main() { parfor i = u..1 { } }`,
		`func main() { while u { } }`,
		`func main() { if u { } }`,
		`func main() { lock u { } }`,
		`array A[2]; func main() { A[u] = 1; }`,
		`array A[2]; func main() { A[0] = u; }`,
		`array A[2]; func main() { x = A[u]; }`,
		`func main() { x = -u; }`,
		`func main() { x = !u; }`,
		`func main() { x = 1 + u; }`,
		`func main() { call f(u); } func f(x) {}`,
	}
	for _, src := range cases {
		prog := mustParse(t, src)
		if _, err := Annotate(prog); err != nil {
			t.Fatalf("%q: annotate: %v", src, err)
		}
		if _, err := Lower(prog); err == nil {
			t.Errorf("lowered %q despite undefined variable", src)
		}
	}
}
