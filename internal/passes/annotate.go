// Package passes implements the compile-time half of the profiler pipeline
// for MiniPar programs: static loop annotation (the equivalent of the
// paper's Listing 1, which attaches a unique loop ID to every loop header as
// LLVM metadata), AST constant folding, lowering to the stack-machine IR,
// the instrumentation pass that marks shared-memory accesses with probes,
// and an IR verifier.
package passes

import (
	"fmt"

	"commprof/internal/minipar"
	"commprof/internal/trace"
)

// Annotate assigns a static region to every function and loop of the
// program, mutating the AST's RegionID fields, and returns the region table
// the profiler attributes communication to. This is the MiniPar rendition of
// Listing 1: each loop header gets a fresh UID; nested loops record their
// parent through the table's tree structure.
func Annotate(p *minipar.Program) (*trace.Table, error) {
	table := trace.NewTable()
	for i := range p.Funcs {
		f := &p.Funcs[i]
		f.RegionID = table.AddFunc(f.Name, trace.NoRegion)
		counter := 0
		if err := annotateStmts(table, f.Body, f.RegionID, f.Name, &counter); err != nil {
			return nil, err
		}
	}
	if err := table.Validate(); err != nil {
		return nil, fmt.Errorf("passes: annotation produced invalid table: %w", err)
	}
	return table, nil
}

func annotateStmts(table *trace.Table, ss []minipar.Stmt, parent int32, fname string, counter *int) error {
	for _, s := range ss {
		switch st := s.(type) {
		case *minipar.ForStmt:
			kind := "for"
			if st.Parallel {
				kind = "parfor"
			}
			st.RegionID = table.AddLoop(fmt.Sprintf("%s#%s%d", fname, kind, *counter), parent)
			*counter++
			if err := annotateStmts(table, st.Body, st.RegionID, fname, counter); err != nil {
				return err
			}
		case *minipar.WhileStmt:
			st.RegionID = table.AddLoop(fmt.Sprintf("%s#while%d", fname, *counter), parent)
			*counter++
			if err := annotateStmts(table, st.Body, st.RegionID, fname, counter); err != nil {
				return err
			}
		case *minipar.IfStmt:
			if err := annotateStmts(table, st.Then, parent, fname, counter); err != nil {
				return err
			}
			if err := annotateStmts(table, st.Else, parent, fname, counter); err != nil {
				return err
			}
		case *minipar.LockStmt:
			if err := annotateStmts(table, st.Body, parent, fname, counter); err != nil {
				return err
			}
		}
	}
	return nil
}
