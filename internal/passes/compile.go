package passes

import (
	"commprof/internal/ir"
	"commprof/internal/minipar"
	"commprof/internal/trace"
)

// Compile runs the full static pipeline on MiniPar source: parse, loop
// annotation, constant folding, lowering, instrumentation (of the functions
// in only, or the whole program when only is nil), and verification. It
// returns the executable module and the static region table.
func Compile(src string, only map[string]bool) (*ir.Module, *trace.Table, error) {
	prog, err := minipar.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	table, err := Annotate(prog)
	if err != nil {
		return nil, nil, err
	}
	FoldConstants(prog)
	mod, err := Lower(prog)
	if err != nil {
		return nil, nil, err
	}
	Instrument(mod, only)
	if err := Verify(mod); err != nil {
		return nil, nil, err
	}
	return mod, table, nil
}
