package passes

import (
	"commprof/internal/ir"
	"commprof/internal/minipar"
	"commprof/internal/trace"
)

// Options configures CompileWith.
type Options struct {
	// Only restricts instrumentation to the named functions; nil instruments
	// the whole program.
	Only map[string]bool
	// Coalesce runs the static access-coalescing pass after instrumentation
	// (see Coalesce). Compile turns it on; the -coalesce=false escape hatch
	// on the drivers turns it off.
	Coalesce bool
}

// Compile runs the full static pipeline on MiniPar source: parse, loop
// annotation, constant folding, lowering, instrumentation (of the functions
// in only, or the whole program when only is nil), static access coalescing,
// and verification. It returns the executable module and the static region
// table.
func Compile(src string, only map[string]bool) (*ir.Module, *trace.Table, error) {
	mod, table, _, err := CompileWith(src, Options{Only: only, Coalesce: true})
	return mod, table, err
}

// CompileWith is Compile with explicit pass options; it additionally returns
// the coalescing statistics (zero when the pass is off).
func CompileWith(src string, opts Options) (*ir.Module, *trace.Table, CoalesceStats, error) {
	var cs CoalesceStats
	prog, err := minipar.Parse(src)
	if err != nil {
		return nil, nil, cs, err
	}
	table, err := Annotate(prog)
	if err != nil {
		return nil, nil, cs, err
	}
	FoldConstants(prog)
	mod, err := Lower(prog)
	if err != nil {
		return nil, nil, cs, err
	}
	Instrument(mod, opts.Only)
	if opts.Coalesce {
		cs = Coalesce(mod)
	}
	if err := Verify(mod); err != nil {
		return nil, nil, cs, err
	}
	return mod, table, cs, nil
}
