package passes_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	commprof "commprof"
	"commprof/internal/passes"
	"commprof/internal/trace"
)

// TestProfileSplashCoalesceFlag pins that the coalescing escape hatch is
// inert for the bundled SPLASH workloads: they issue probes directly (no
// MiniPar compilation), so a profile with coalescing on must be byte-equal —
// the whole Report, matrices included — to one with it off, at randomised
// granularity. Any divergence means DisableCoalesce leaked into a code path
// it must not touch.
func TestProfileSplashCoalesceFlag(t *testing.T) {
	const seed = 20150910
	for i, name := range commprof.Workloads() {
		name := name
		gran := uint(rand.New(rand.NewSource(seed + int64(i))).Intn(7))
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := fmt.Sprintf("seed=%d workload=%s granularity=%d", seed, name, gran)
			base := commprof.Options{
				Workload: name, Threads: 8, InputSize: "simdev", Seed: 7,
				GranularityBits: gran,
			}
			on, err := commprof.Profile(base)
			if err != nil {
				t.Fatalf("%s: %v", cfg, err)
			}
			off := base
			off.DisableCoalesce = true
			offRep, err := commprof.Profile(off)
			if err != nil {
				t.Fatalf("%s: %v", cfg, err)
			}
			if on.Coalescing != nil || offRep.Coalescing != nil {
				t.Fatalf("%s: SPLASH profile grew a coalescing section", cfg)
			}
			if !reflect.DeepEqual(on, offRep) {
				t.Fatalf("%s: -coalesce flag changed a SPLASH profile:\non:\n%s\noff:\n%s",
					cfg, on.Summary(), offRep.Summary())
			}
		})
	}
}

// TestProfileMiniParCoalesceIdentity is the facade-level differential: a full
// ProfileMiniPar run with coalescing on must report the same communication —
// global matrix, per-region matrices, dependence and byte counts, hotspots —
// and the same program outputs as one with it off, while actually eliding a
// measurable share of the probe stream.
func TestProfileMiniParCoalesceIdentity(t *testing.T) {
	srcs := coalesceKernelSources()
	for name, src := range srcs {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			const threads = 4
			on, onOuts, err := commprof.ProfileMiniPar(src, threads, nil, commprof.Options{})
			if err != nil {
				t.Fatal(err)
			}
			off, offOuts, err := commprof.ProfileMiniPar(src, threads, nil, commprof.Options{DisableCoalesce: true})
			if err != nil {
				t.Fatal(err)
			}
			if off.Coalescing != nil {
				t.Fatal("DisableCoalesce run still has a coalescing report")
			}
			if on.Coalescing == nil {
				t.Fatal("default run is missing its coalescing report")
			}
			if on.Coalescing.Elided == 0 {
				t.Fatalf("no accesses elided at runtime: %+v", on.Coalescing)
			}
			if on.Coalescing.Elided+on.Coalescing.Emitted != off.Accesses {
				t.Fatalf("elided (%d) + emitted (%d) != uncoalesced accesses (%d)",
					on.Coalescing.Elided, on.Coalescing.Emitted, off.Accesses)
			}
			if on.Accesses != off.Accesses {
				t.Fatalf("access counts differ: %d vs %d", on.Accesses, off.Accesses)
			}
			if on.Dependencies != off.Dependencies || on.CommBytes != off.CommBytes {
				t.Fatalf("detected communication differs: on=%d deps/%dB off=%d deps/%dB",
					on.Dependencies, on.CommBytes, off.Dependencies, off.CommBytes)
			}
			if !reflect.DeepEqual(on.Global, off.Global) {
				t.Fatalf("global matrices differ:\non: %+v\noff: %+v", on.Global, off.Global)
			}
			if !reflect.DeepEqual(maskRegionAccesses(on.Regions), maskRegionAccesses(off.Regions)) {
				t.Fatalf("region reports differ:\non: %+v\noff: %+v", on.Regions, off.Regions)
			}
			if !reflect.DeepEqual(on.Hotspots, off.Hotspots) {
				t.Fatalf("hotspot reports differ:\non: %+v\noff: %+v", on.Hotspots, off.Hotspots)
			}
			if !reflect.DeepEqual(onOuts, offOuts) {
				t.Fatalf("program outputs differ:\non: %+v\noff: %+v", onOuts, offOuts)
			}
		})
	}
}

// TestProfileTraceParallelCoalesceIdentity drives the captured coalesced and
// uncoalesced probe streams of each kernel through the sharded facade at
// randomised shard counts: the parallel analysis of the thinned stream must
// agree with the parallel analysis of the full stream.
func TestProfileTraceParallelCoalesceIdentity(t *testing.T) {
	const seed = 20150911
	rng := rand.New(rand.NewSource(seed))
	for name, src := range coalesceKernelSources() {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			const threads = 4
			onAccs, onRegs := captureFacadeTrace(t, src, threads, true)
			offAccs, offRegs := captureFacadeTrace(t, src, threads, false)
			if len(onAccs) >= len(offAccs) {
				t.Fatalf("coalesced stream is not thinner: %d vs %d accesses", len(onAccs), len(offAccs))
			}
			for trial := 0; trial < 3; trial++ {
				shards := 1 + rng.Intn(8)
				cfg := fmt.Sprintf("seed=%d program=%s trial=%d shards=%d", seed, name, trial, shards)
				opts := commprof.Options{AnalysisShards: shards}
				on, err := commprof.ProfileTraceParallel(onAccs, onRegs, threads, opts)
				if err != nil {
					t.Fatalf("%s: %v", cfg, err)
				}
				off, err := commprof.ProfileTraceParallel(offAccs, offRegs, threads, opts)
				if err != nil {
					t.Fatalf("%s: %v", cfg, err)
				}
				if on.Dependencies != off.Dependencies || on.CommBytes != off.CommBytes {
					t.Fatalf("%s: detected communication differs: on=%d deps/%dB off=%d deps/%dB",
						cfg, on.Dependencies, on.CommBytes, off.Dependencies, off.CommBytes)
				}
				if !reflect.DeepEqual(on.Global, off.Global) {
					t.Fatalf("%s: global matrices differ:\non: %+v\noff: %+v", cfg, on.Global, off.Global)
				}
				if !reflect.DeepEqual(maskRegionAccesses(on.Regions), maskRegionAccesses(off.Regions)) {
					t.Fatalf("%s: region reports differ:\non: %+v\noff: %+v", cfg, on.Regions, off.Regions)
				}
			}
		})
	}
}

// maskRegionAccesses zeroes the per-region emitted-probe counts: the one
// field the coalesced run legitimately shrinks (an elided access still ticks
// the engine but is never attributed to a region). Every other field —
// matrices, communicated bytes, ordering — must match exactly.
func maskRegionAccesses(regs []commprof.RegionReport) []commprof.RegionReport {
	out := make([]commprof.RegionReport, len(regs))
	copy(out, regs)
	for i := range out {
		out[i].Accesses = 0
	}
	return out
}

// captureFacadeTrace compiles and runs src under sync-only scheduling and
// returns the emitted probe stream and region list in the facade's types.
func captureFacadeTrace(t *testing.T, src string, threads int, coalesce bool) ([]commprof.Access, []commprof.Region) {
	t.Helper()
	run := runKernelExact(t, src, threads, coalesce)
	accs := make([]commprof.Access, 0, len(run.Accesses))
	for _, a := range run.Accesses {
		k := commprof.ReadAccess
		if a.Kind == trace.Write {
			k = commprof.WriteAccess
		}
		accs = append(accs, commprof.Access{
			Kind: k, Addr: a.Addr, Size: a.Size,
			Thread: a.Thread, Region: a.Region, Time: a.Time,
		})
	}
	regs := make([]commprof.Region, 0, run.Table.Len())
	for _, r := range run.Table.Regions {
		regs = append(regs, commprof.Region{
			Name: r.Name, Parent: r.Parent, Loop: r.Kind == trace.LoopRegion,
		})
	}
	return accs, regs
}

// The helpers below re-export the internal test corpus for this external
// test package.

func coalesceKernelSources() map[string]string {
	return passes.CoalesceKernels()
}

func runKernelExact(t *testing.T, src string, threads int, coalesce bool) passes.KernelRun {
	t.Helper()
	run, err := passes.RunKernelExact(src, threads, 0, coalesce)
	if err != nil {
		t.Fatal(err)
	}
	return run
}
