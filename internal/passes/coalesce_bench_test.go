package passes

import (
	"sort"
	"testing"

	"commprof/internal/detect"
	"commprof/internal/exec"
	"commprof/internal/interp"
	"commprof/internal/sig"
)

// BenchmarkCoalesce measures the static-coalescing payoff on the structured
// kernel corpus: one sub-benchmark per kernel and pass state, reporting
// ns/access (normalised to the UNCOALESCED access count on both sides, so
// on/off ratios read directly as speedup) plus the emitted and elided stream
// sizes. scripts/bench.sh coalesce parses this output into
// BENCH_coalesce.json.
func BenchmarkCoalesce(b *testing.B) {
	kernels := CoalesceKernels()
	names := make([]string, 0, len(kernels))
	for n := range kernels {
		names = append(names, n)
	}
	sort.Strings(names)

	const threads = 8
	for _, name := range names {
		src := kernels[name]
		for _, mode := range []struct {
			label    string
			coalesce bool
		}{{"on", true}, {"off", false}} {
			b.Run(name+"/"+mode.label, func(b *testing.B) {
				// Compile once: the pass is a one-time static cost, and
				// ns/access measures the recurring execute+analyse loop the
				// elision thins.
				mod, table, _, err := CompileWith(src, Options{Coalesce: mode.coalesce})
				if err != nil {
					b.Fatal(err)
				}
				run := func() (exec.Stats, error) {
					rt, err := interp.New(mod)
					if err != nil {
						return exec.Stats{}, err
					}
					d, err := detect.New(detect.Options{
						Threads: threads, Backend: sig.NewPerfect(threads), Table: table,
					})
					if err != nil {
						return exec.Stats{}, err
					}
					eng := exec.New(exec.Options{Threads: threads, Quantum: 1 << 30, Probe: d.Probe()})
					return rt.Run(eng)
				}
				stats, err := run() // warm-up establishes the stream accounting
				if err != nil {
					b.Fatal(err)
				}
				total := stats.Accesses // includes elided ticks

				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := run(); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				// ResetTimer clears earlier ReportMetric values, so all
				// metrics land here.
				b.ReportMetric(float64(total-stats.Elided), "emitted")
				b.ReportMetric(float64(stats.Elided), "elided")
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(total), "ns/access")
			})
		}
	}
}
