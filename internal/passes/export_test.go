package passes

import "commprof/internal/trace"

// This file re-exports the coalescing tests' exact runner for the external
// facade test package (coalesce_facade_test.go), which pins the same
// differential property through the public commprof API. The kernel corpus
// itself is exported for real (kernels.go) since the commbench ablation and
// the bench harness share it.

// KernelRun is the externally visible slice of a miniParRun: the emitted
// probe stream and the static region table, enough to replay the run through
// the facade's trace entry points.
type KernelRun struct {
	Accesses []trace.Access
	Table    *trace.Table
}

// RunKernelExact compiles and executes src under sync-only scheduling on an
// exact backend (see runExactErr) and returns the captured probe stream.
func RunKernelExact(src string, threads int, gran uint, coalesce bool) (KernelRun, error) {
	run, err := runExactErr(src, threads, gran, coalesce, 0)
	if err != nil {
		return KernelRun{}, err
	}
	return KernelRun{Accesses: run.accesses, Table: run.table}, nil
}
