package passes

import (
	"fmt"

	"commprof/internal/ir"
)

// Verify checks structural well-formedness of a lowered module: jump targets
// in range, array and function references valid, local slots within bounds,
// and — via abstract interpretation over the control-flow graph — a
// consistent, non-negative evaluation-stack depth at every instruction with
// depth zero at every return. Run it after lowering and instrumentation;
// a failure indicates a compiler bug, not a user error.
func Verify(m *ir.Module) error {
	if m.MainIndex < 0 || m.MainIndex >= len(m.Funcs) {
		return fmt.Errorf("passes: invalid main index %d", m.MainIndex)
	}
	for fi := range m.Funcs {
		if err := verifyFunc(m, &m.Funcs[fi]); err != nil {
			return fmt.Errorf("passes: func %s: %w", m.Funcs[fi].Name, err)
		}
	}
	return nil
}

func verifyFunc(m *ir.Module, f *ir.Func) error {
	n := len(f.Code)
	if n == 0 {
		return fmt.Errorf("empty body")
	}
	// Static reference checks.
	for pc, in := range f.Code {
		switch in.Op {
		case ir.OpJump, ir.OpJumpZero:
			if in.A < 0 || in.A > int64(n) {
				return fmt.Errorf("pc %d: jump target %d out of range", pc, in.A)
			}
		case ir.OpLoadArr, ir.OpStoreArr:
			if in.A < 0 || int(in.A) >= len(m.Arrays) {
				return fmt.Errorf("pc %d: array %d out of range", pc, in.A)
			}
		case ir.OpCall:
			if in.A < 0 || int(in.A) >= len(m.Funcs) {
				return fmt.Errorf("pc %d: callee %d out of range", pc, in.A)
			}
		case ir.OpLoadLocal, ir.OpStoreLocal:
			if in.A < 0 || int(in.A) >= f.NumLocals {
				return fmt.Errorf("pc %d: local slot %d out of range [0,%d)", pc, in.A, f.NumLocals)
			}
		case ir.OpBin:
			if ir.BinOpName(in.A) == fmt.Sprintf("bin(%d)", in.A) {
				return fmt.Errorf("pc %d: unknown binary operator %d", pc, in.A)
			}
		}
	}

	// Abstract stack-depth interpretation. Entry depth is the parameter
	// count (the caller pushed the arguments).
	depth := make([]int, n)
	seen := make([]bool, n)
	type state struct{ pc, d int }
	work := []state{{0, f.NumParams}}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		if s.pc == n {
			if s.d != 0 {
				return fmt.Errorf("fall-off with stack depth %d", s.d)
			}
			continue
		}
		if seen[s.pc] {
			if depth[s.pc] != s.d {
				return fmt.Errorf("pc %d: inconsistent stack depth %d vs %d", s.pc, depth[s.pc], s.d)
			}
			continue
		}
		seen[s.pc] = true
		depth[s.pc] = s.d
		in := f.Code[s.pc]
		d := s.d + stackDelta(m, in)
		if d < 0 {
			return fmt.Errorf("pc %d (%s): stack underflow", s.pc, in)
		}
		switch in.Op {
		case ir.OpJump:
			work = append(work, state{int(in.A), d})
		case ir.OpJumpZero:
			work = append(work, state{int(in.A), d}, state{s.pc + 1, d})
		case ir.OpRet:
			if d != 0 {
				return fmt.Errorf("pc %d: return with stack depth %d", s.pc, d)
			}
		default:
			work = append(work, state{s.pc + 1, d})
		}
	}
	return nil
}

// stackDelta returns the net evaluation-stack effect of an instruction.
func stackDelta(m *ir.Module, in ir.Instr) int {
	switch in.Op {
	case ir.OpPush, ir.OpLoadLocal, ir.OpTid, ir.OpNThreads:
		return 1
	case ir.OpStoreLocal, ir.OpJumpZero, ir.OpWork, ir.OpOut, ir.OpLock, ir.OpUnlock, ir.OpBin:
		return -1
	case ir.OpLoadArr, ir.OpNeg, ir.OpNot:
		return 0 // pop one, push one
	case ir.OpStoreArr:
		return -2
	case ir.OpCall:
		return -m.Funcs[in.A].NumParams
	default:
		return 0
	}
}
