package passes

import "testing"

// FuzzCompile asserts the pipeline invariant: any source that parses must
// also annotate, lower, instrument and VERIFY — a verifier rejection of our
// own compiler output is a compiler bug, whatever the input was.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		pipelineSrc,
		`func main() {}`,
		`array A[2]; func main() { A[0] = A[1]; }`,
		`func main() { parfor i = 0..4 { for j = 0..i { work j; } } }`,
		`func main() { call f(1); } func f(x) { if x { call f(x-1); } }`,
		`array A[4]; func main() { lock 3 { A[0] = A[0] + 1; } barrier; }`,
		`func main() { while 1 > 2 { out 0; } }`,
		`func main() { x = 1 && 0 || !0; out x; }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		mod, table, err := Compile(src, nil)
		if err != nil {
			return // invalid input is fine; panics are not
		}
		if mod == nil || table == nil {
			t.Fatal("nil results without error")
		}
		// Verify ran inside Compile; re-run to be explicit about the
		// invariant this fuzz target protects.
		if err := Verify(mod); err != nil {
			t.Fatalf("verifier rejected compiled output: %v", err)
		}
	})
}
