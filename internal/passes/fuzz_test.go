package passes

import "testing"

// FuzzCompile asserts the pipeline invariant: any source that parses must
// also annotate, lower, instrument and VERIFY — a verifier rejection of our
// own compiler output is a compiler bug, whatever the input was.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		pipelineSrc,
		`func main() {}`,
		`array A[2]; func main() { A[0] = A[1]; }`,
		`func main() { parfor i = 0..4 { for j = 0..i { work j; } } }`,
		`func main() { call f(1); } func f(x) { if x { call f(x-1); } }`,
		`array A[4]; func main() { lock 3 { A[0] = A[0] + 1; } barrier; }`,
		`func main() { while 1 > 2 { out 0; } }`,
		`func main() { x = 1 && 0 || !0; out x; }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		mod, table, err := Compile(src, nil)
		if err != nil {
			return // invalid input is fine; panics are not
		}
		if mod == nil || table == nil {
			t.Fatal("nil results without error")
		}
		// Verify ran inside Compile; re-run to be explicit about the
		// invariant this fuzz target protects.
		if err := Verify(mod); err != nil {
			t.Fatalf("verifier rejected compiled output: %v", err)
		}
	})
}

// FuzzCoalesce is the coalescing pass's differential fuzz wall: for any
// source that compiles, the coalesced module must (a) still verify, (b) keep
// its probe metadata consistent, and (c) be observably identical to the
// uncoalesced module on an exact backend under sync-only scheduling —
// byte-equal communication matrices at every tree node, identical outputs,
// detection stats and scheduling. The granularity varies with the input so
// the corpus also exercises granule aliasing.
func FuzzCoalesce(f *testing.F) {
	seeds := []string{
		pipelineSrc,
		coalesceKernels["fft"],
		coalesceKernels["stencil"],
		coalesceKernels["reduction"],
		`array A[4]; func main() { x = A[1] + A[1]; A[1] = x; out A[1]; }`,
		`array A[8]; func main() { for i = 0..4 { out A[2] + A[2]; } }`,
		`array A[8]; func main() { x = A[3]; barrier; y = A[3]; out x + y; }`,
		`array A[8]; func main() { s = 0; for i = 0..4 { s = s + A[i] * A[0]; work 1; } out s; }`,
		`array A[4]; func main() { lock 0 { A[0] = A[0] + 1; } out A[0]; }`,
		`array A[8]; func main() { parfor i = 0..8 { A[i] = tid; } barrier; out A[0] + A[7] + A[0]; }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		modOn, _, cs, errOn := CompileWith(src, Options{Coalesce: true})
		_, _, _, errOff := CompileWith(src, Options{Coalesce: false})
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("coalescing changed compilability: on=%v off=%v", errOn, errOff)
		}
		if errOn != nil {
			return // invalid input is fine; panics and divergence are not
		}
		if err := Verify(modOn); err != nil {
			t.Fatalf("verifier rejected coalesced output: %v", err)
		}
		marked := 0
		for _, fn := range modOn.Funcs {
			for pc, in := range fn.Code {
				if in.Elide || in.OnceAnchor != 0 {
					marked++
					if !in.Probed {
						t.Fatalf("%s pc %d: coalescing mark on unprobed instruction", fn.Name, pc)
					}
				}
				if in.Elide && in.OnceAnchor != 0 {
					t.Fatalf("%s pc %d: probe marked both elided and once", fn.Name, pc)
				}
			}
		}
		if marked != cs.Elided+cs.Once {
			t.Fatalf("stats %+v disagree with %d marked probes", cs, marked)
		}

		// Differential execution: bounded steps so fuzzed loops terminate
		// quickly; the elided-tick rule makes both runs hit any bound at the
		// same step.
		const maxSteps = 1 << 18
		gran := uint(len(src) % 7)
		on, onErr := runExactErr(src, 2, gran, true, maxSteps)
		off, offErr := runExactErr(src, 2, gran, false, maxSteps)
		if (onErr == nil) != (offErr == nil) {
			t.Fatalf("coalescing changed runnability (gran=%d): on=%v off=%v", gran, onErr, offErr)
		}
		if onErr != nil {
			return // both runs failed identically (runtime fault or step cap)
		}
		if d := diffRuns(on, off); d != "" {
			t.Fatalf("coalesced run diverged (gran=%d): %s", gran, d)
		}
	})
}
