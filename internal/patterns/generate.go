package patterns

import (
	"fmt"
	"math"
	"math/rand"

	"commprof/internal/comm"
)

// Generate produces a synthetic communication matrix of the given class for
// n threads, with multiplicative noise and random overall volume — the
// labelled training corpus for the supervised classifiers. The generators
// encode the canonical topology of each motif (the "unique communication
// topology between each processor/thread" of the paper's introduction).
func Generate(c Class, n int, rng *rand.Rand) *comm.Matrix {
	if n < 4 {
		panic(fmt.Sprintf("patterns: need at least 4 threads, got %d", n))
	}
	m := comm.NewMatrix(n)
	scale := 1000 + rng.Intn(100000) // overall volume is size-dependent noise
	noise := func(base float64) uint64 {
		if base <= 0 {
			return 0
		}
		v := base * float64(scale) * (0.7 + 0.6*rng.Float64())
		return uint64(v) + 1
	}
	switch c {
	case LinearAlgebra:
		// 2-D processor grid; panel owners broadcast along their grid row
		// and column.
		pr := 1
		for d := 1; d*d <= n; d++ {
			if n%d == 0 {
				pr = d
			}
		}
		pc := n / pr
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				sameRow := s/pc == d/pc
				sameCol := s%pc == d%pc
				switch {
				case sameRow || sameCol:
					m.Add(int32(s), int32(d), noise(1))
				case rng.Float64() < 0.1:
					m.Add(int32(s), int32(d), noise(0.05))
				}
			}
		}
	case Spectral:
		// Transpose all-to-all: uniform off-diagonal volume.
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s != d {
					m.Add(int32(s), int32(d), noise(1))
				}
			}
		}
	case NBody:
		// Distance-decaying symmetric band with low global background.
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				dist := math.Abs(float64(s - d))
				w := math.Exp(-dist/2) + 0.03
				m.Add(int32(s), int32(d), noise(w))
			}
		}
	case StructuredGrid:
		// Halo exchange with immediate neighbours (1-D or 2-D grid).
		pc := 1
		for d := 1; d*d <= n; d++ {
			if n%d == 0 {
				pc = n / d
			}
		}
		for s := 0; s < n; s++ {
			for _, d := range []int{s - 1, s + 1, s - pc, s + pc} {
				if d >= 0 && d < n && d != s {
					m.Add(int32(s), int32(d), noise(1))
				}
			}
		}
	case MasterWorker:
		// Thread 0 distributes work and collects results.
		for w := 1; w < n; w++ {
			m.Add(0, int32(w), noise(1))
			m.Add(int32(w), 0, noise(0.8))
			// Occasional light peer chatter (work stealing).
			if rng.Float64() < 0.15 {
				m.Add(int32(w), int32(rng.Intn(n)), noise(0.05))
			}
		}
	case Pipeline:
		// One-directional stage chain.
		for s := 0; s < n-1; s++ {
			m.Add(int32(s), int32(s+1), noise(1))
		}
		if rng.Float64() < 0.3 {
			m.Add(int32(n-1), 0, noise(0.5)) // ring closure variant
		}
	case Barrier:
		// Flat all-to-all flag exchange: near-identical cells.
		base := noise(1)
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s != d {
					jitter := uint64(rng.Intn(3))
					m.Add(int32(s), int32(d), base+jitter)
				}
			}
		}
	default:
		panic(fmt.Sprintf("patterns: unknown class %d", c))
	}
	return m
}

// AddSignatureNoise simulates the false-positive communication a small
// signature memory injects: spurious byte counts at uniformly random cells.
// rate is the fraction of the matrix's total volume added as noise.
func AddSignatureNoise(m *comm.Matrix, rate float64, rng *rand.Rand) {
	n := m.N()
	total := m.Total()
	budget := uint64(float64(total) * rate)
	if budget == 0 {
		return
	}
	chunks := n * 4
	per := budget / uint64(chunks)
	if per == 0 {
		per = 1
	}
	for i := 0; i < chunks; i++ {
		s, d := rng.Intn(n), rng.Intn(n)
		if s == d {
			continue
		}
		m.Add(int32(s), int32(d), per)
	}
}

// Sample is a labelled training/evaluation example.
type Sample struct {
	Class    Class
	Features [FeatureDim]float64
}

// Corpus generates perClass samples of every class across the given thread
// counts, with optional signature noise.
func Corpus(perClass int, threadCounts []int, noiseRate float64, rng *rand.Rand) []Sample {
	var out []Sample
	for c := Class(0); c < NumClasses; c++ {
		for i := 0; i < perClass; i++ {
			n := threadCounts[rng.Intn(len(threadCounts))]
			m := Generate(c, n, rng)
			if noiseRate > 0 {
				AddSignatureNoise(m, noiseRate, rng)
			}
			out = append(out, Sample{Class: c, Features: Features(m)})
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
