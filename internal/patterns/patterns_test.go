package patterns

import (
	"math/rand"
	"testing"

	"commprof/internal/comm"
)

func TestClassNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Class(0); c < NumClasses; c++ {
		n := c.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("bad class name %q for %d", n, c)
		}
		seen[n] = true
	}
	if Class(99).String() != "unknown" {
		t.Fatal("out-of-range class must be unknown")
	}
}

func TestFeaturesZeroMatrix(t *testing.T) {
	f := Features(comm.NewMatrix(8))
	for i, v := range f {
		if v != 0 {
			t.Fatalf("feature %s = %v for zero matrix", FeatureNames[i], v)
		}
	}
}

func TestFeaturesRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for c := Class(0); c < NumClasses; c++ {
		for trial := 0; trial < 10; trial++ {
			f := Features(Generate(c, 16, rng))
			for i, v := range f {
				// Share-type features live in [0,1]; CVs and distances are
				// non-negative and bounded for these generators.
				if v < -1e-9 || v > 25 {
					t.Fatalf("%v feature %s = %v out of range", c, FeatureNames[i], v)
				}
			}
		}
	}
}

func TestFeaturesScaleInvariant(t *testing.T) {
	// Features must not depend on absolute volume.
	a, err := comm.FromRows([][]uint64{
		{0, 10, 0, 0}, {0, 0, 10, 0}, {0, 0, 0, 10}, {0, 0, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := comm.FromRows([][]uint64{
		{0, 10000, 0, 0}, {0, 0, 10000, 0}, {0, 0, 0, 10000}, {0, 0, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := Features(a), Features(b)
	for i := range fa {
		if diff := fa[i] - fb[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("feature %s not scale-invariant: %v vs %v", FeatureNames[i], fa[i], fb[i])
		}
	}
}

func TestGeneratorsTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Pipeline: forward ring share near 1.
	f := Features(Generate(Pipeline, 16, rng))
	if f[3] < 0.6 {
		t.Fatalf("pipeline ringFwd = %v", f[3])
	}
	// MasterWorker: row0+col0 dominant.
	f = Features(Generate(MasterWorker, 16, rng))
	if f[5]+f[6] < 0.7 {
		t.Fatalf("master/worker row0+col0 = %v", f[5]+f[6])
	}
	// Spectral: high density.
	f = Features(Generate(Spectral, 16, rng))
	if f[8] < 0.95 {
		t.Fatalf("spectral density = %v", f[8])
	}
	// StructuredGrid: band share high, density low.
	f = Features(Generate(StructuredGrid, 16, rng))
	if f[8] > 0.5 {
		t.Fatalf("grid density = %v", f[8])
	}
}

func TestGenerateSmallNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(Spectral, 2, rand.New(rand.NewSource(1)))
}

func TestRuleBasedOnCleanData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	test := Corpus(30, []int{8, 16, 32}, 0, rng)
	ev := Evaluate(RuleBased{}, test)
	if ev.Accuracy < 0.85 {
		t.Fatalf("rule-based accuracy %.3f < 0.85; confusion: %v", ev.Accuracy, ev.Confusion)
	}
}

func TestKNNReproducesPaperAccuracy(t *testing.T) {
	// §VI: ">97% accuracy with the aid of algorithmic methods and
	// supervised learning".
	rng := rand.New(rand.NewSource(4))
	train := Corpus(60, []int{8, 16, 32}, 0, rng)
	test := Corpus(40, []int{8, 16, 32}, 0, rng)
	knn, err := NewKNN(5, train)
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(knn, test)
	if ev.Accuracy < 0.97 {
		t.Fatalf("kNN accuracy %.3f < 0.97; confusion: %v", ev.Accuracy, ev.Confusion)
	}
}

func TestNaiveBayesAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	train := Corpus(60, []int{8, 16, 32}, 0, rng)
	test := Corpus(40, []int{8, 16, 32}, 0, rng)
	nb, err := NewNaiveBayes(train)
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(nb, test)
	if ev.Accuracy < 0.9 {
		t.Fatalf("NB accuracy %.3f < 0.9; confusion: %v", ev.Accuracy, ev.Confusion)
	}
}

func TestLearnerCompensatesSignatureNoise(t *testing.T) {
	// §VI: "the negative effect of false positives could be compensated by
	// using machine learning classification methods". Train on noisy data,
	// test on noisy data: accuracy must stay high, and must beat the
	// rule-based classifier evaluated on the same noisy test set.
	rng := rand.New(rand.NewSource(6))
	const noise = 0.25
	train := Corpus(60, []int{8, 16, 32}, noise, rng)
	test := Corpus(40, []int{8, 16, 32}, noise, rng)
	knn, err := NewKNN(5, train)
	if err != nil {
		t.Fatal(err)
	}
	evKNN := Evaluate(knn, test)
	evRule := Evaluate(RuleBased{}, test)
	if evKNN.Accuracy < 0.9 {
		t.Fatalf("kNN on noisy data %.3f < 0.9", evKNN.Accuracy)
	}
	if evKNN.Accuracy < evRule.Accuracy {
		t.Fatalf("learning (%.3f) did not compensate noise vs rules (%.3f)", evKNN.Accuracy, evRule.Accuracy)
	}
}

func TestEvaluatePerClassRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	train := Corpus(50, []int{16}, 0, rng)
	test := Corpus(20, []int{16}, 0, rng)
	knn, err := NewKNN(3, train)
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(knn, test)
	rec := ev.PerClassRecall()
	for c := Class(0); c < NumClasses; c++ {
		if rec[c] < 0.8 {
			t.Errorf("recall for %v = %.2f", c, rec[c])
		}
	}
	if ev.N != len(test) {
		t.Fatalf("N = %d", ev.N)
	}
}

func TestTrainingValidation(t *testing.T) {
	if _, err := NewKNN(0, nil); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewKNN(5, make([]Sample, 2)); err == nil {
		t.Error("too-small training set accepted")
	}
	// NB requires all classes present.
	partial := []Sample{{Class: Spectral}, {Class: Spectral}}
	if _, err := NewNaiveBayes(partial); err == nil {
		t.Error("missing classes accepted")
	}
}

func TestAddSignatureNoiseIncreasesVolume(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := Generate(StructuredGrid, 16, rng)
	before := m.Total()
	AddSignatureNoise(m, 0.3, rng)
	after := m.Total()
	if after <= before {
		t.Fatalf("noise did not add volume: %d -> %d", before, after)
	}
	AddSignatureNoise(m, 0, rng) // zero rate: no-op
	if m.Total() != after {
		t.Fatal("zero-rate noise changed the matrix")
	}
}

func TestClassifyMatrixEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	train := Corpus(60, []int{8, 16, 32}, 0, rng)
	knn, err := NewKNN(5, train)
	if err != nil {
		t.Fatal(err)
	}
	m := Generate(Pipeline, 16, rng)
	if got := ClassifyMatrix(knn, m); got != Pipeline {
		t.Fatalf("ClassifyMatrix = %v, want Pipeline", got)
	}
}

func BenchmarkFeatureExtraction32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := Generate(Spectral, 32, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Features(m)
	}
}

func BenchmarkKNNPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	train := Corpus(60, []int{8, 16, 32}, 0, rng)
	knn, err := NewKNN(5, train)
	if err != nil {
		b.Fatal(err)
	}
	f := Features(Generate(NBody, 16, rng))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		knn.Predict(f)
	}
}

func TestFamilyTaxonomy(t *testing.T) {
	want := map[Class]Family{
		LinearAlgebra:  Computational,
		Spectral:       Computational,
		NBody:          Computational,
		StructuredGrid: Computational,
		MasterWorker:   Architectural,
		Pipeline:       Architectural,
		Barrier:        Synchronization,
	}
	for c, f := range want {
		if got := FamilyOf(c); got != f {
			t.Errorf("FamilyOf(%v) = %v, want %v", c, got, f)
		}
	}
	for _, f := range []Family{Computational, Architectural, Synchronization} {
		if f.String() == "" || f.String() == "unknown" {
			t.Errorf("family %d has bad name", f)
		}
	}
	if Family(9).String() != "unknown" {
		t.Error("out-of-range family")
	}
}
