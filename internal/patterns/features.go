// Package patterns classifies communication matrices into parallel-pattern
// classes (§VI): computational motifs (linear algebra, spectral, n-body,
// structured grid), architectural patterns (master/worker, pipeline) and
// synchronization patterns (barrier). It extracts size-independent structural
// features from normalized matrices and provides both an algorithmic
// rule-based classifier and two from-scratch supervised learners (kNN and
// Gaussian naive Bayes), reproducing the paper's ">97% accuracy" experiment
// and its observation that learning compensates signature false positives.
package patterns

import (
	"math"

	"commprof/internal/comm"
)

// Class is a parallel-pattern class.
type Class int

const (
	// LinearAlgebra is the blocked-panel broadcast structure of LU/Cholesky.
	LinearAlgebra Class = iota
	// Spectral is the all-to-all transpose structure of FFT.
	Spectral
	// NBody is the distance-decaying band of particle codes.
	NBody
	// StructuredGrid is the nearest-neighbour halo exchange of stencils.
	StructuredGrid
	// MasterWorker concentrates traffic on one coordinator thread.
	MasterWorker
	// Pipeline is the one-directional neighbour chain.
	Pipeline
	// Barrier is the flat, uniform all-to-all of synchronization flags.
	Barrier

	// NumClasses is the number of pattern classes.
	NumClasses
)

var classNames = [...]string{
	"linear-algebra", "spectral", "n-body", "structured-grid",
	"master-worker", "pipeline", "barrier",
}

// String returns the class name.
func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return "unknown"
	}
	return classNames[c]
}

// FeatureDim is the length of the feature vector.
const FeatureDim = 16

// FeatureNames labels the entries of a feature vector, index-aligned.
var FeatureNames = [FeatureDim]string{
	"band1", "band2", "bandLog", "ringFwd", "ringBwd",
	"row0", "col0", "symmetry", "density", "cellCV",
	"rowCV", "maxRow", "maxCell", "meanDist", "pow2", "activeRows",
}

// Features extracts the size-independent structural feature vector of a
// communication matrix. An all-zero matrix yields the zero vector.
func Features(m *comm.Matrix) [FeatureDim]float64 {
	n := m.N()
	var f [FeatureDim]float64
	var total float64
	cells := make([]float64, 0, n*n-n)
	rows := make([]float64, n)
	var band1, band2, bandLog, ringF, ringB, row0, col0, pow2 float64
	var maxCell, meanDist float64

	logBand := int(math.Ceil(math.Log2(float64(n))))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			v := float64(m.At(s, d))
			total += v
			if v > 0 {
				cells = append(cells, v)
			}
			rows[s] += v
			dist := s - d
			if dist < 0 {
				dist = -dist
			}
			if dist <= 1 {
				band1 += v
			}
			if dist <= 2 {
				band2 += v
			}
			if dist <= logBand {
				bandLog += v
			}
			if d == (s+1)%n {
				ringF += v
			}
			if d == (s-1+n)%n {
				ringB += v
			}
			if s == 0 {
				row0 += v
			}
			if d == 0 {
				col0 += v
			}
			if dist&(dist-1) == 0 { // power of two (dist>=1 here)
				pow2 += v
			}
			if v > maxCell {
				maxCell = v
			}
			meanDist += v * float64(dist)
		}
	}
	if total == 0 {
		return f
	}

	f[0] = band1 / total
	f[1] = band2 / total
	f[2] = bandLog / total
	f[3] = ringF / total
	f[4] = ringB / total
	f[5] = row0 / total
	f[6] = col0 / total

	// Symmetry: 1 - sum|a-aT| / (2*total).
	var asym float64
	for s := 0; s < n; s++ {
		for d := s + 1; d < n; d++ {
			asym += math.Abs(float64(m.At(s, d)) - float64(m.At(d, s)))
		}
	}
	f[7] = 1 - asym/total

	f[8] = float64(len(cells)) / float64(n*n-n)
	f[9] = cv(cells)

	maxRow := 0.0
	for _, r := range rows {
		if r > maxRow {
			maxRow = r
		}
	}
	f[10] = cv(rows)
	f[11] = maxRow / total
	f[12] = maxCell / total
	f[13] = meanDist / total / float64(n)
	f[14] = pow2 / total
	active := 0
	for _, r := range rows {
		if r > 0 {
			active++
		}
	}
	f[15] = float64(active) / float64(n)
	return f
}

func cv(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(xs))) / mean
}

// Family is the paper's §VI top-level taxonomy: "three classes of parallel
// patterns could be identified: (1) Computational patterns (Motifs),
// (2) Architectural patterns and (3) Synchronization patterns."
type Family int

const (
	// Computational covers the Berkeley-motif-style classes.
	Computational Family = iota
	// Architectural covers program-structure patterns.
	Architectural
	// Synchronization covers barrier/lock traffic.
	Synchronization
)

// String returns the family name.
func (f Family) String() string {
	switch f {
	case Computational:
		return "computational"
	case Architectural:
		return "architectural"
	case Synchronization:
		return "synchronization"
	default:
		return "unknown"
	}
}

// FamilyOf maps a pattern class to its §VI family.
func FamilyOf(c Class) Family {
	switch c {
	case LinearAlgebra, Spectral, NBody, StructuredGrid:
		return Computational
	case MasterWorker, Pipeline:
		return Architectural
	case Barrier:
		return Synchronization
	default:
		return Computational
	}
}
