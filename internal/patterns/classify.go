package patterns

import (
	"fmt"
	"math"
	"sort"

	"commprof/internal/comm"
)

// Classifier assigns a pattern class to a feature vector.
type Classifier interface {
	// Predict returns the most likely class for the feature vector.
	Predict(f [FeatureDim]float64) Class
	// Name identifies the classifier in reports.
	Name() string
}

// ClassifyMatrix is the convenience entry point: extract features and predict.
func ClassifyMatrix(c Classifier, m *comm.Matrix) Class {
	return c.Predict(Features(m))
}

// ---------------------------------------------------------------------------
// Rule-based classifier (the paper's "algorithmic methods").

// RuleBased classifies with hand-written decision rules over the same
// features the learners use. It needs no training and documents what each
// topology looks like quantitatively.
type RuleBased struct{}

// Name implements Classifier.
func (RuleBased) Name() string { return "rule-based" }

// Predict implements Classifier.
func (RuleBased) Predict(f [FeatureDim]float64) Class {
	band1, ringF, ringB := f[0], f[3], f[4]
	row0, col0 := f[5], f[6]
	density, cellCV, rowCV := f[8], f[9], f[10]
	switch {
	case ringF > 0.75 && ringB < 0.15:
		// Strongly one-directional neighbour chain.
		return Pipeline
	case row0+col0 > 0.75:
		return MasterWorker
	case band1 > 0.45 && f[1] < 0.95 && density < 0.5:
		return StructuredGrid
	case density > 0.9 && cellCV < 0.08 && rowCV < 0.08:
		// Full, almost perfectly flat matrix: barrier flags.
		return Barrier
	case band1 > 0.35 && density > 0.5:
		// Heavy decaying band over a global background.
		return NBody
	case density > 0.85 && cellCV < 0.45:
		return Spectral
	default:
		return LinearAlgebra
	}
}

// ---------------------------------------------------------------------------
// k-nearest-neighbours.

// KNN is a k-nearest-neighbour classifier over standardized features.
type KNN struct {
	k      int
	mean   [FeatureDim]float64
	std    [FeatureDim]float64
	points [][FeatureDim]float64
	labels []Class
}

// NewKNN trains a kNN classifier (k must be odd and positive).
func NewKNN(k int, train []Sample) (*KNN, error) {
	if k <= 0 {
		return nil, fmt.Errorf("patterns: k must be positive, got %d", k)
	}
	if len(train) < k {
		return nil, fmt.Errorf("patterns: %d training samples for k=%d", len(train), k)
	}
	m := &KNN{k: k}
	m.mean, m.std = standardize(train)
	for _, s := range train {
		m.points = append(m.points, m.scale(s.Features))
		m.labels = append(m.labels, s.Class)
	}
	return m, nil
}

// Name implements Classifier.
func (m *KNN) Name() string { return fmt.Sprintf("knn(k=%d)", m.k) }

func (m *KNN) scale(f [FeatureDim]float64) [FeatureDim]float64 {
	var out [FeatureDim]float64
	for i := range f {
		out[i] = (f[i] - m.mean[i]) / m.std[i]
	}
	return out
}

// vote tallies the k nearest neighbours' labels.
func (m *KNN) vote(f [FeatureDim]float64) [NumClasses]int {
	q := m.scale(f)
	type nd struct {
		d     float64
		label Class
	}
	ds := make([]nd, len(m.points))
	for i, p := range m.points {
		var sum float64
		for j := range p {
			diff := p[j] - q[j]
			sum += diff * diff
		}
		ds[i] = nd{sum, m.labels[i]}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].d < ds[j].d })
	var votes [NumClasses]int
	for i := 0; i < m.k && i < len(ds); i++ {
		votes[ds[i].label]++
	}
	return votes
}

// Predict implements Classifier.
func (m *KNN) Predict(f [FeatureDim]float64) Class {
	votes := m.vote(f)
	best, bestV := Class(0), -1
	for c, v := range votes {
		if v > bestV {
			best, bestV = Class(c), v
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Gaussian naive Bayes.

// NaiveBayes is a Gaussian naive Bayes classifier.
type NaiveBayes struct {
	mean  [NumClasses][FeatureDim]float64
	vari  [NumClasses][FeatureDim]float64
	prior [NumClasses]float64
}

// NewNaiveBayes trains a Gaussian NB model; every class must appear in the
// training set.
func NewNaiveBayes(train []Sample) (*NaiveBayes, error) {
	var count [NumClasses]int
	m := &NaiveBayes{}
	for _, s := range train {
		count[s.Class]++
		for j, v := range s.Features {
			m.mean[s.Class][j] += v
		}
	}
	for c := 0; c < int(NumClasses); c++ {
		if count[c] == 0 {
			return nil, fmt.Errorf("patterns: class %s missing from training set", Class(c))
		}
		for j := range m.mean[c] {
			m.mean[c][j] /= float64(count[c])
		}
		m.prior[c] = float64(count[c]) / float64(len(train))
	}
	for _, s := range train {
		for j, v := range s.Features {
			d := v - m.mean[s.Class][j]
			m.vari[s.Class][j] += d * d
		}
	}
	const varFloor = 1e-6
	for c := 0; c < int(NumClasses); c++ {
		for j := range m.vari[c] {
			m.vari[c][j] = m.vari[c][j]/float64(count[c]) + varFloor
		}
	}
	return m, nil
}

// Name implements Classifier.
func (m *NaiveBayes) Name() string { return "naive-bayes" }

// logLikelihood is the unnormalized class log-posterior.
func (m *NaiveBayes) logLikelihood(c Class, f [FeatureDim]float64) float64 {
	ll := math.Log(m.prior[c])
	for j, v := range f {
		d := v - m.mean[c][j]
		ll += -0.5*math.Log(2*math.Pi*m.vari[c][j]) - d*d/(2*m.vari[c][j])
	}
	return ll
}

// Predict implements Classifier.
func (m *NaiveBayes) Predict(f [FeatureDim]float64) Class {
	best, bestLL := Class(0), math.Inf(-1)
	for c := 0; c < int(NumClasses); c++ {
		ll := m.logLikelihood(Class(c), f)
		if ll > bestLL {
			best, bestLL = Class(c), ll
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Evaluation harness.

// Evaluation is the result of testing a classifier on labelled samples.
type Evaluation struct {
	Accuracy  float64
	Confusion [NumClasses][NumClasses]int // [true][predicted]
	N         int
}

// Evaluate runs the classifier over the test set.
func Evaluate(c Classifier, test []Sample) Evaluation {
	var ev Evaluation
	correct := 0
	for _, s := range test {
		pred := c.Predict(s.Features)
		ev.Confusion[s.Class][pred]++
		if pred == s.Class {
			correct++
		}
	}
	ev.N = len(test)
	if ev.N > 0 {
		ev.Accuracy = float64(correct) / float64(ev.N)
	}
	return ev
}

// PerClassRecall returns recall per true class.
func (e Evaluation) PerClassRecall() [NumClasses]float64 {
	var out [NumClasses]float64
	for c := 0; c < int(NumClasses); c++ {
		total := 0
		for p := 0; p < int(NumClasses); p++ {
			total += e.Confusion[c][p]
		}
		if total > 0 {
			out[c] = float64(e.Confusion[c][c]) / float64(total)
		}
	}
	return out
}

func standardize(train []Sample) (mean, std [FeatureDim]float64) {
	for _, s := range train {
		for j, v := range s.Features {
			mean[j] += v
		}
	}
	n := float64(len(train))
	for j := range mean {
		mean[j] /= n
	}
	for _, s := range train {
		for j, v := range s.Features {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / n)
		if std[j] < 1e-9 {
			std[j] = 1
		}
	}
	return mean, std
}
