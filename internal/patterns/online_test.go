package patterns

import (
	"math/rand"
	"testing"

	"commprof/internal/comm"
)

func trainedKNN(t *testing.T, rng *rand.Rand) *KNN {
	t.Helper()
	knn, err := NewKNN(5, Corpus(40, []int{8, 16}, 0, rng))
	if err != nil {
		t.Fatal(err)
	}
	return knn
}

// TestPredictWithConfidenceAgrees pins that the confidence-bearing entry
// points return exactly the class Predict would, with a confidence in (0,1].
func TestPredictWithConfidenceAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := Corpus(40, []int{8, 16}, 0, rng)
	knn, err := NewKNN(5, train)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := NewNaiveBayes(train)
	if err != nil {
		t.Fatal(err)
	}
	test := Corpus(10, []int{8, 16}, 0.02, rng)
	for _, c := range []ConfidenceClassifier{knn, nb} {
		for _, s := range test {
			class, conf := c.PredictWithConfidence(s.Features)
			if class != c.Predict(s.Features) {
				t.Fatalf("%s: PredictWithConfidence class differs from Predict", c.Name())
			}
			if conf <= 0 || conf > 1 {
				t.Fatalf("%s: confidence %v outside (0,1]", c.Name(), conf)
			}
		}
	}
}

// TestKNNConfidenceIsVoteShare checks the KNN confidence is quantized to
// vote fractions of k.
func TestKNNConfidenceIsVoteShare(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	knn := trainedKNN(t, rng)
	for _, s := range Corpus(5, []int{8}, 0.05, rng) {
		_, conf := knn.PredictWithConfidence(s.Features)
		votes := conf * 5
		if diff := votes - float64(int(votes+0.5)); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("confidence %v is not a multiple of 1/k", conf)
		}
	}
}

// TestClassifyMatrixWithConfidenceFallback pins the confidence-less
// classifier path: same class as ClassifyMatrix, confidence exactly 1.
func TestClassifyMatrixWithConfidenceFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Generate(Pipeline, 8, rng)
	class, conf := ClassifyMatrixWithConfidence(RuleBased{}, m)
	if class != ClassifyMatrix(RuleBased{}, m) {
		t.Fatal("fallback class differs from ClassifyMatrix")
	}
	if conf != 1 {
		t.Fatalf("fallback confidence %v, want 1", conf)
	}
}

// TestOnlineStream drives the streaming classifier over generated windows
// with a forced class change and checks current/recent/transition tracking.
func TestOnlineStream(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	knn := trainedKNN(t, rng)
	o := NewOnline(knn, 3)

	// Phase 1: three pipeline windows; phase 2: three master-worker windows.
	var lastClass Class
	for i := 0; i < 6; i++ {
		gen := Pipeline
		if i >= 3 {
			gen = MasterWorker
		}
		m := Generate(gen, 16, rng)
		start := uint64(i) * 100
		wc, transition := o.Observe(start, start+100, m)
		if wc.Start != start || wc.End != start+100 {
			t.Fatalf("window %d bounds [%d,%d)", i, wc.Start, wc.End)
		}
		if wc.Bytes != m.Total() {
			t.Fatalf("window %d bytes %d, want %d", i, wc.Bytes, m.Total())
		}
		if i == 0 && transition {
			t.Fatal("first window must not be a transition")
		}
		if i > 0 && transition != (wc.Class != lastClass) {
			t.Fatalf("window %d transition=%v with class %v after %v", i, transition, wc.Class, lastClass)
		}
		lastClass = wc.Class
	}

	cur, ok := o.Current()
	if !ok || cur.Start != 500 {
		t.Fatalf("Current() = %+v, %v; want last window", cur, ok)
	}
	recent := o.Recent()
	if len(recent) != 3 {
		t.Fatalf("Recent() kept %d windows, want 3", len(recent))
	}
	if recent[0].Start != 300 || recent[2].Start != 500 {
		t.Fatalf("Recent() window starts %d..%d, want 300..500", recent[0].Start, recent[2].Start)
	}
	if o.Windows() != 6 {
		t.Fatalf("Windows() = %d, want 6", o.Windows())
	}
	var total uint64
	for _, n := range o.ClassCounts() {
		total += n
	}
	if total != 6 {
		t.Fatalf("class counts sum to %d, want 6", total)
	}
	// The generated corpora are cleanly separable, so the forced class change
	// at window 3 must register at least one transition.
	if o.Transitions() == 0 {
		t.Fatal("no transitions observed across a forced pattern change")
	}
}

// TestOnlineEmptyWindow pins that an all-zero window classifies without
// panicking and still counts.
func TestOnlineEmptyWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	o := NewOnline(trainedKNN(t, rng), 0)
	wc, _ := o.Observe(0, 100, comm.NewMatrix(8))
	if wc.Bytes != 0 {
		t.Fatalf("empty window bytes %d", wc.Bytes)
	}
	if o.Windows() != 1 {
		t.Fatalf("Windows() = %d, want 1", o.Windows())
	}
	if got := o.Recent(); len(got) != 0 {
		t.Fatalf("keep=0 retained %d windows", len(got))
	}
}
