package patterns

import (
	"math"
	"sync"

	"commprof/internal/comm"
)

// ConfidenceClassifier is an optional extension of Classifier for models that
// can attach a confidence to their prediction. KNN reports its vote fraction,
// NaiveBayes its softmax posterior; classifiers without a meaningful score
// (RuleBased) fall back to Predict with confidence 1.
type ConfidenceClassifier interface {
	Classifier
	// PredictWithConfidence returns the most likely class and a confidence in
	// (0, 1].
	PredictWithConfidence(f [FeatureDim]float64) (Class, float64)
}

// ClassifyMatrixWithConfidence extracts features and predicts with a
// confidence when the classifier supports one (1.0 otherwise).
func ClassifyMatrixWithConfidence(c Classifier, m *comm.Matrix) (Class, float64) {
	f := Features(m)
	if cc, ok := c.(ConfidenceClassifier); ok {
		return cc.PredictWithConfidence(f)
	}
	return c.Predict(f), 1
}

// PredictWithConfidence implements ConfidenceClassifier: the confidence is
// the winning class's share of the k votes.
func (m *KNN) PredictWithConfidence(f [FeatureDim]float64) (Class, float64) {
	votes := m.vote(f)
	best, bestV := Class(0), -1
	for c, v := range votes {
		if v > bestV {
			best, bestV = Class(c), v
		}
	}
	k := m.k
	if len(m.points) < k {
		k = len(m.points)
	}
	if k == 0 {
		return best, 1
	}
	return best, float64(bestV) / float64(k)
}

// PredictWithConfidence implements ConfidenceClassifier: the confidence is
// the softmax posterior of the winning class over the per-class
// log-likelihoods (computed stably via log-sum-exp).
func (m *NaiveBayes) PredictWithConfidence(f [FeatureDim]float64) (Class, float64) {
	var ll [NumClasses]float64
	best, bestLL := Class(0), math.Inf(-1)
	for c := 0; c < int(NumClasses); c++ {
		ll[c] = m.logLikelihood(Class(c), f)
		if ll[c] > bestLL {
			best, bestLL = Class(c), ll[c]
		}
	}
	var sum float64
	for c := 0; c < int(NumClasses); c++ {
		sum += math.Exp(ll[c] - bestLL)
	}
	return best, 1 / sum
}

// WindowClass is one classified time window of a streaming run.
type WindowClass struct {
	Start      uint64
	End        uint64
	Class      Class
	Confidence float64
	Bytes      uint64
}

// Online classifies a stream of closed communication windows, tracking the
// current pattern, detected transitions, per-class window counts, and the
// last few classified windows. It is safe for concurrent use (the window
// stream is serialized by the caller's closer, but readers — /progress
// snapshots, metric gauges — race with it).
type Online struct {
	c    Classifier
	keep int

	mu          sync.Mutex
	current     WindowClass
	hasCurrent  bool
	recent      []WindowClass
	counts      [NumClasses]uint64
	windows     uint64
	transitions uint64
}

// NewOnline builds a streaming classifier that retains the last keep
// classified windows (keep <= 0 retains none).
func NewOnline(c Classifier, keep int) *Online {
	if keep < 0 {
		keep = 0
	}
	return &Online{c: c, keep: keep}
}

// Observe classifies one closed window and returns its classification plus
// whether it begins a new phase (the class differs from the previous
// window's). Empty windows are classified like any other — an all-zero
// matrix is itself a signal (no communication).
func (o *Online) Observe(start, end uint64, m *comm.Matrix) (WindowClass, bool) {
	class, conf := ClassifyMatrixWithConfidence(o.c, m)
	wc := WindowClass{Start: start, End: end, Class: class, Confidence: conf, Bytes: m.Total()}
	o.mu.Lock()
	defer o.mu.Unlock()
	transition := o.hasCurrent && o.current.Class != class
	o.current = wc
	o.hasCurrent = true
	o.windows++
	o.counts[class]++
	if transition {
		o.transitions++
	}
	if o.keep > 0 {
		o.recent = append(o.recent, wc)
		if len(o.recent) > o.keep {
			o.recent = o.recent[len(o.recent)-o.keep:]
		}
	}
	return wc, transition
}

// Current returns the latest classified window, if any.
func (o *Online) Current() (WindowClass, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.current, o.hasCurrent
}

// Recent returns the last classified windows, oldest first.
func (o *Online) Recent() []WindowClass {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]WindowClass, len(o.recent))
	copy(out, o.recent)
	return out
}

// Windows returns the number of windows classified so far.
func (o *Online) Windows() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.windows
}

// Transitions returns the number of class changes observed so far.
func (o *Online) Transitions() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.transitions
}

// ClassCounts returns the number of windows classified into each class.
func (o *Online) ClassCounts() [NumClasses]uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.counts
}
