package commprof

import (
	"bytes"
	"testing"
)

// TestTraceFormatComposesWithAnalysisOptions is a regression guard for the
// facade: TraceFormat selects only the wire encoding, so a trace recorded in
// any format must replay identically under every analysis feature —
// sharding, phase windows, the redundancy fast path and the accuracy
// monitor — with the feature reports still attached.
func TestTraceFormatComposesWithAnalysisOptions(t *testing.T) {
	const threads = 8
	bufs := map[int][]byte{}
	for _, version := range []int{1, 2, 3} {
		var buf bytes.Buffer
		if _, err := Record(Options{Workload: "fft", Threads: threads, TraceFormat: version}, &buf); err != nil {
			t.Fatal(err)
		}
		bufs[version] = buf.Bytes()
	}

	paths := []struct {
		name string
		opts Options
	}{
		{"serial-phases", Options{PhaseWindow: 2000}},
		{"sharded", Options{AnalysisShards: 2}},
		{"sharded-phases", Options{AnalysisShards: 2, PhaseWindow: 2000}},
		{"sharded-redundancy", Options{AnalysisShards: 2, RedundancyCacheBits: 6}},
		{"sharded-accuracy", Options{AnalysisShards: 2, AccuracyTargetFPR: 0.05, AccuracySampleBits: 1}},
		{"kitchen-sink", Options{AnalysisShards: 4, PhaseWindow: 2000, RedundancyCacheBits: 6, AccuracyTargetFPR: 0.05}},
	}
	for _, path := range paths {
		t.Run(path.name, func(t *testing.T) {
			var want *Report
			for _, version := range []int{1, 2, 3} {
				rep, err := Replay(bytes.NewReader(bufs[version]), threads, path.opts)
				if err != nil {
					t.Fatalf("v%d: %v", version, err)
				}
				if path.opts.PhaseWindow > 0 && rep.PhaseTimeline == nil {
					t.Errorf("v%d: phase timeline missing", version)
				}
				if path.opts.RedundancyCacheBits > 0 && rep.Redundancy == nil {
					t.Errorf("v%d: redundancy report missing", version)
				}
				if path.opts.AccuracyTargetFPR > 0 && rep.Accuracy == nil {
					t.Errorf("v%d: accuracy report missing", version)
				}
				if want == nil {
					want = rep
					continue
				}
				if rep.Dependencies != want.Dependencies || rep.CommBytes != want.CommBytes {
					t.Errorf("v%d: %d deps / %d bytes, v1 found %d / %d",
						version, rep.Dependencies, rep.CommBytes, want.Dependencies, want.CommBytes)
				}
				if !matrixEqual(rep.Global, want.Global) {
					t.Errorf("v%d: global matrix differs from v1", version)
				}
			}
		})
	}
}

func matrixEqual(a, b Matrix) bool {
	if len(a.Bytes) != len(b.Bytes) {
		return false
	}
	for i := range a.Bytes {
		if len(a.Bytes[i]) != len(b.Bytes[i]) {
			return false
		}
		for j := range a.Bytes[i] {
			if a.Bytes[i][j] != b.Bytes[i][j] {
				return false
			}
		}
	}
	return true
}
