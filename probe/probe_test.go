package probe

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"unsafe"

	"commprof/internal/trace"
)

// TestShimRecordsTrace drives the whole shim once (the package state is
// process-global, like the real instrumented runtime): several goroutines
// probe shared memory, Shutdown writes a v2 trace, and the decode round-trip
// checks compact goroutine IDs, the patched counts and the temporal order.
func TestShimRecordsTrace(t *testing.T) {
	Register([]Region{
		{Name: "main", Parent: -1, File: "main.go", Line: 5},
		{Name: "main#for1", Parent: 0, Loop: true, File: "main.go", Line: 8},
	})
	var shared [4]uint64
	const workers, rounds = 3, 100

	g0 := G()
	if again := G(); again != g0 {
		t.Fatal("G() did not return a stable per-goroutine handle")
	}
	g0.W(unsafe.Pointer(&shared[0]), 8, 0)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := G()
			for i := 0; i < rounds; i++ {
				g.R(unsafe.Pointer(&shared[0]), 8, 1)
				g.W(unsafe.Pointer(&shared[1+w%3]), 8, 1)
			}
		}(w)
	}
	wg.Wait()

	path := filepath.Join(t.TempDir(), "probe.trace")
	os.Setenv("COMMPROF_TRACE", path)
	defer os.Unsetenv("COMMPROF_TRACE")
	Shutdown()
	Shutdown() // idempotent

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dec, err := trace.NewDecoder(f)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Threads() != workers+1 {
		t.Fatalf("Threads() = %d, want %d", dec.Threads(), workers+1)
	}
	want := 1 + workers*rounds*2
	if dec.Len() != want {
		t.Fatalf("Len() = %d, want %d", dec.Len(), want)
	}
	if dec.Table().Len() != 2 || dec.Table().Regions[1].File != "main.go" {
		t.Fatalf("region table did not round-trip: %+v", dec.Table().Regions)
	}
	var prev uint64
	seen := map[int32]bool{}
	if err := dec.ForEach(func(a trace.Access) error {
		if a.Time <= prev {
			t.Fatalf("records out of temporal order: %d after %d", a.Time, prev)
		}
		prev = a.Time
		seen[a.Thread] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for id := int32(0); id <= workers; id++ {
		if !seen[id] {
			t.Fatalf("compact goroutine ID %d missing from trace (saw %v)", id, seen)
		}
	}

	// Probes after Shutdown must be dropped, not crash.
	g0.W(unsafe.Pointer(&shared[0]), 8, 0)
}
