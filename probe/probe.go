// Package probe is the runtime shim linked into source-instrumented Go
// programs (see internal/instrument and cmd/commtrace). The rewriter injects
// three kinds of calls into a target package:
//
//   - Register, from a generated init function, declaring the static region
//     table (functions and loops with their file:line positions);
//   - G, at the top of each instrumented function body, resolving the
//     calling goroutine's probe handle (assigning a compact goroutine ID on
//     first use);
//   - TG.R / TG.W, before each instrumented statement, recording one shared
//     memory access as (kind, address, size, goroutine, static region).
//
// Records carry a logical timestamp from one global atomic clock, giving the
// total order Algorithm 1 requires, and batch per goroutine so the hot path
// is an uncontended mutex and a slice append. Shutdown — injected as a defer
// in main.main — flushes every goroutine's batch, sorts by the clock, and
// either writes a trace file for offline Replay (COMMPROF_TRACE=path,
// record mode: compact v3 blocks by default, COMMPROF_TRACE_FORMAT=2 for the
// fixed-record v2 layout; the header's access and goroutine counts are
// patched on close, since neither is known up front) or feeds the run
// straight into the sharded
// analysis pipeline via ProfileTraceParallel and prints the standard report
// (live mode, the default). Accesses issued by goroutines that outlive main
// are dropped, not recorded.
package probe

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"unsafe"

	"commprof"
	"commprof/internal/trace"
)

// batchSize is each goroutine's staging buffer in records; a full buffer
// spills into the global collector under one lock.
const batchSize = 8192

var (
	mu        sync.Mutex
	table     = trace.NewTable()
	handles   sync.Map // goid (uint64) → *TG
	all       []*TG
	collected []trace.Access
	clock     atomic.Uint64
	closed    atomic.Bool
	shutdown  sync.Once
)

// Region declares one static region to Register; a mirror of the public
// commprof.Region so instrumented programs need only this package's API.
type Region struct {
	Name   string
	Parent int32 // index of the enclosing region, or -1 for roots
	Loop   bool
	File   string
	Line   int
}

// Register installs the instrumented package's static region table. The
// rewriter emits exactly one Register call in a generated init function, so
// it runs before main and before any probe.
func Register(regions []Region) {
	mu.Lock()
	defer mu.Unlock()
	for _, r := range regions {
		var id int32
		if r.Loop {
			id = table.AddLoop(r.Name, r.Parent)
		} else {
			id = table.AddFunc(r.Name, r.Parent)
		}
		table.Regions[id].File = r.File
		table.Regions[id].Line = r.Line
	}
}

// TG is one goroutine's probe handle: its compact thread ID and staging
// batch. The owning goroutine is the only appender; the mutex exists to
// serialize against Shutdown's final flush from the main goroutine.
type TG struct {
	id    int32
	mu    sync.Mutex
	batch []trace.Access
}

// G returns the calling goroutine's handle, assigning the next compact
// goroutine ID on first use. The rewriter injects one G call per instrumented
// function body, so the runtime.Stack goid parse is paid per call, not per
// memory access.
func G() *TG {
	id := goid()
	if h, ok := handles.Load(id); ok {
		return h.(*TG)
	}
	mu.Lock()
	defer mu.Unlock()
	if h, ok := handles.Load(id); ok {
		return h.(*TG)
	}
	g := &TG{id: int32(len(all)), batch: make([]trace.Access, 0, batchSize)}
	all = append(all, g)
	handles.Store(id, g)
	return g
}

// goid parses the current goroutine's runtime ID from the runtime.Stack
// header ("goroutine N [running]:"). There is no public accessor; this is
// the standard portable fallback.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// R records a read of size bytes at p inside static region.
func (g *TG) R(p unsafe.Pointer, size uint32, region int32) {
	g.record(trace.Read, p, size, region)
}

// W records a write of size bytes at p inside static region.
func (g *TG) W(p unsafe.Pointer, size uint32, region int32) {
	g.record(trace.Write, p, size, region)
}

func (g *TG) record(kind trace.Kind, p unsafe.Pointer, size uint32, region int32) {
	if closed.Load() {
		return
	}
	g.mu.Lock()
	g.batch = append(g.batch, trace.Access{
		Time:   clock.Add(1),
		Addr:   uint64(uintptr(p)),
		Size:   size,
		Thread: g.id,
		Region: region,
		Kind:   kind,
	})
	if len(g.batch) == batchSize {
		g.flushLocked()
	}
	g.mu.Unlock()
}

// flushLocked spills the staged batch into the global collector; caller holds
// g.mu.
func (g *TG) flushLocked() {
	if len(g.batch) == 0 {
		return
	}
	mu.Lock()
	collected = append(collected, g.batch...)
	mu.Unlock()
	g.batch = g.batch[:0]
}

// Shutdown finalizes the run: it stops recording, flushes every goroutine's
// batch, restores the global temporal order, and dispatches on environment —
// COMMPROF_TRACE=path writes a trace file (COMMPROF_TRACE_FORMAT picks the
// codec version, default v3); otherwise the run is analysed
// in-process and the report printed to stdout. The rewriter injects it as the
// first defer of main.main; calling it again is a no-op.
func Shutdown() {
	shutdown.Do(func() {
		closed.Store(true)
		mu.Lock()
		gs := append([]*TG(nil), all...)
		mu.Unlock()
		for _, g := range gs {
			g.mu.Lock()
			g.flushLocked()
			g.mu.Unlock()
		}
		mu.Lock()
		accs := collected
		collected = nil
		goroutines := len(all)
		mu.Unlock()
		// Batches interleave arbitrarily across goroutines; the atomic clock
		// carried on every record restores the global order.
		sort.Slice(accs, func(i, j int) bool { return accs[i].Time < accs[j].Time })

		var err error
		if path := os.Getenv("COMMPROF_TRACE"); path != "" {
			err = record(path, accs, goroutines)
		} else {
			err = live(accs, goroutines)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "commprof/probe:", err)
		}
	})
}

// record writes the run as a trace file — v3 (compact blocks) by default,
// or the format COMMPROF_TRACE_FORMAT names (2 or 3). Header counts start
// as the unpatched sentinel and are patched on Close, so a recording that
// dies mid-write is detectably truncated rather than silently short (and
// salvageable with commtrace -mode recover).
func record(path string, accs []trace.Access, goroutines int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc, err := trace.NewDynamicEncoderVersion(f, table, envInt("COMMPROF_TRACE_FORMAT", 3))
	if err != nil {
		f.Close()
		return err
	}
	for _, a := range accs {
		if err := enc.Write(a); err != nil {
			f.Close()
			return err
		}
	}
	enc.SetThreads(goroutines)
	if err := enc.Close(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "commprof/probe: recorded %d accesses from %d goroutines to %s\n",
		len(accs), goroutines, path)
	return nil
}

// live analyses the run in-process through the sharded pipeline and prints
// the standard report, so an instrumented binary is useful stand-alone.
func live(accs []trace.Access, goroutines int) error {
	if goroutines == 0 {
		fmt.Fprintln(os.Stderr, "commprof/probe: no instrumented accesses recorded")
		return nil
	}
	regions := make([]commprof.Region, table.Len())
	for i, r := range table.Regions {
		regions[i] = commprof.Region{
			Name: r.Name, Parent: r.Parent, Loop: r.Kind == trace.LoopRegion,
			File: r.File, Line: r.Line,
		}
	}
	converted := make([]commprof.Access, len(accs))
	for i, a := range accs {
		k := commprof.ReadAccess
		if a.Kind == trace.Write {
			k = commprof.WriteAccess
		}
		converted[i] = commprof.Access{
			Kind: k, Addr: a.Addr, Size: a.Size,
			Thread: a.Thread, Region: a.Region, Time: a.Time,
		}
	}
	opts := commprof.Options{
		Threads:             goroutines,
		AnalysisShards:      envInt("COMMPROF_SHARDS", runtime.GOMAXPROCS(0)),
		PhaseWindow:         uint64(envInt("COMMPROF_PHASES", 0)),
		GranularityBits:     uint(envInt("COMMPROF_GRANULARITY", 0)),
		RedundancyCacheBits: uint(envInt("COMMPROF_REDUNDANCY_BITS", 0)),
	}
	if slots := envInt("COMMPROF_SIG", 0); slots > 0 {
		opts.SignatureSlots = uint64(slots)
	}
	// COMMPROF_TIMELINE=path records the analysis's execution timeline and
	// writes it as Chrome/Perfetto trace-event JSON alongside the report.
	timelinePath := os.Getenv("COMMPROF_TIMELINE")
	var tel *commprof.Telemetry
	if timelinePath != "" {
		tel = commprof.NewTelemetry()
		tel.EnableTimeline()
		opts.Telemetry = tel
	}
	rep, err := commprof.ProfileTraceParallel(converted, regions, goroutines, opts)
	if err != nil {
		return err
	}
	fmt.Print(rep.Summary())
	if timelinePath != "" {
		f, err := os.Create(timelinePath)
		if err != nil {
			return err
		}
		err = tel.WriteTimeline(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "commprof/probe: wrote execution timeline to %s\n", timelinePath)
	}
	return nil
}

// envInt reads an integer environment knob, falling back on absence or a
// parse failure.
func envInt(name string, fallback int) int {
	v := os.Getenv(name)
	if v == "" {
		return fallback
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		fmt.Fprintf(os.Stderr, "commprof/probe: ignoring %s=%q: %v\n", name, v, err)
		return fallback
	}
	return n
}
