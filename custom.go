package commprof

import (
	"fmt"
	"math/rand"

	"commprof/internal/detect"
	"commprof/internal/exec"
	"commprof/internal/metrics"
	"commprof/internal/sig"
	"commprof/internal/trace"
)

// AccessKind distinguishes reads and writes in user-supplied traces.
type AccessKind uint8

const (
	// ReadAccess is a load from shared memory.
	ReadAccess AccessKind = iota
	// WriteAccess is a store to shared memory.
	WriteAccess
)

// Access is one memory operation of a user-supplied trace. Supply accesses
// in temporal order; Region is an index into the regions passed to
// ProfileTrace, or -1 for none.
type Access struct {
	Kind   AccessKind
	Addr   uint64
	Size   uint32
	Thread int32
	Region int32
	Time   uint64
}

// Region declares one static code region for trace profiling. Parent is the
// index of the enclosing region in the same slice, or -1 for a root. Loop
// regions are the hotspot granularity. File/Line optionally locate the region
// in real source (the instrumentation shim fills them); reports then label
// the region "name file.go:line".
type Region struct {
	Name   string
	Parent int32
	Loop   bool
	File   string
	Line   int
}

// buildTable converts a public region list into the internal static region
// table shared by every trace-profiling entry point.
func buildTable(regions []Region) (*trace.Table, error) {
	table := trace.NewTable()
	for _, r := range regions {
		var id int32
		if r.Loop {
			id = table.AddLoop(r.Name, r.Parent)
		} else {
			id = table.AddFunc(r.Name, r.Parent)
		}
		table.Regions[id].File = r.File
		table.Regions[id].Line = r.Line
	}
	if err := table.Validate(); err != nil {
		return nil, fmt.Errorf("commprof: invalid region list: %w", err)
	}
	return table, nil
}

// ProfileTrace runs the profiler offline over a recorded access trace.
func ProfileTrace(accesses []Access, regions []Region, threads int, opts Options) (*Report, error) {
	opts.setDefaults()
	if threads <= 0 {
		return nil, fmt.Errorf("commprof: threads must be positive, got %d", threads)
	}
	table, err := buildTable(regions)
	if err != nil {
		return nil, err
	}
	tel := opts.Telemetry
	probes := tel.probes()
	backend, err := sig.NewAsymmetric(sig.Options{
		Slots: opts.SignatureSlots, Threads: threads, FPRate: opts.BloomFPRate,
		Probes: probes.SigProbes(),
	})
	if err != nil {
		return nil, err
	}
	mon, err := newAccuracyMonitor(opts, threads, probes)
	if err != nil {
		return nil, err
	}
	// The replay loop below is the cache's and the monitor's single consumer.
	dopts := detect.Options{
		Threads: threads, Backend: backend, Table: table,
		GranularityBits:     opts.GranularityBits,
		RedundancyCacheBits: opts.RedundancyCacheBits,
		Accuracy:            mon,
		Probes:              probes.DetectProbes(),
	}
	ps, err := newPhaseState(opts, table, tel, probes)
	if err != nil {
		return nil, err
	}
	var seg *metrics.PhaseSegmenter
	if ps != nil {
		seg, err = metrics.NewPhaseSegmenter(threads, opts.PhaseWindow, phaseThreshold)
		if err != nil {
			return nil, err
		}
		dopts.OnEvent = seg.Observe
	}
	d, err := detect.New(dopts)
	if err != nil {
		return nil, err
	}
	tel.wireRun(nil, d, backend, nil)
	if seg != nil {
		onClose := ps.onClose()
		ps.wire(func() int { return seg.Advance(onClose) })
	}
	var stats exec.Stats
	for i, a := range accesses {
		if a.Thread < 0 || int(a.Thread) >= threads {
			return nil, fmt.Errorf("commprof: access %d has thread %d out of range", i, a.Thread)
		}
		if a.Region != trace.NoRegion && (a.Region < 0 || int(a.Region) >= table.Len()) {
			return nil, fmt.Errorf("commprof: access %d references unknown region %d", i, a.Region)
		}
		k := trace.Read
		if a.Kind == WriteAccess {
			k = trace.Write
			stats.Writes++
		} else {
			stats.Reads++
		}
		stats.Accesses++
		d.Process(trace.Access{
			Time: a.Time, Addr: a.Addr, Size: a.Size,
			Thread: a.Thread, Region: a.Region, Kind: k,
		})
	}
	rep, tree, err := buildReport("trace", threads, d, stats, backend.FootprintBytes(), opts.MaxHotspots, tel)
	if err != nil {
		return nil, err
	}
	attachAccuracy(rep, d, opts, threads, backend, tel)
	if seg != nil {
		seg.Flush(ps.onClose())
		ps.attach(rep, seg.WindowSet())
	}
	tel.finishRun(rep, tree)
	return rep, nil
}

// Thread is the handle a custom workload body uses inside Run: it mirrors
// the paper's instrumentation points (memory accesses, loop entry/exit,
// synchronization).
type Thread struct {
	t *exec.Thread
}

// ID returns the thread index in [0, threads).
func (t *Thread) ID() int32 { return t.t.ID() }

// Read issues an instrumented load.
func (t *Thread) Read(addr uint64, size uint32) { t.t.Read(addr, size) }

// Write issues an instrumented store.
func (t *Thread) Write(addr uint64, size uint32) { t.t.Write(addr, size) }

// Work simulates units of uninstrumented computation.
func (t *Thread) Work(units int) { t.t.Work(units) }

// Barrier blocks until every thread reaches a barrier.
func (t *Thread) Barrier() { t.t.Barrier() }

// Acquire takes the mutex identified by lock.
func (t *Thread) Acquire(lock int) { t.t.Acquire(lock) }

// Release frees the mutex identified by lock.
func (t *Thread) Release(lock int) { t.t.Release(lock) }

// EnterRegion pushes static region id (an index into Run's regions slice).
func (t *Thread) EnterRegion(id int32) { t.t.EnterRegion(id) }

// ExitRegion pops the innermost region.
func (t *Thread) ExitRegion() { t.t.ExitRegion() }

// InRegion runs fn inside region id.
func (t *Thread) InRegion(id int32, fn func()) { t.t.InRegion(id, fn) }

// Run executes a custom workload body once per thread on the simulated
// engine with the profiler attached, and reports its communication patterns.
// regions declares the static region table; region IDs passed to
// Thread.EnterRegion are indexes into it.
func Run(threads int, regions []Region, body func(*Thread), opts Options) (*Report, error) {
	opts.setDefaults()
	if threads <= 0 {
		return nil, fmt.Errorf("commprof: threads must be positive, got %d", threads)
	}
	table, err := buildTable(regions)
	if err != nil {
		return nil, err
	}
	tel := opts.Telemetry
	probes := tel.probes()
	backend, err := sig.NewAsymmetric(sig.Options{
		Slots: opts.SignatureSlots, Threads: threads, FPRate: opts.BloomFPRate,
		Probes: probes.SigProbes(),
	})
	if err != nil {
		return nil, err
	}
	dopts := detect.Options{
		Threads: threads, Backend: backend, Table: table,
		GranularityBits: opts.GranularityBits,
		Probes:          probes.DetectProbes(),
	}
	if !opts.Parallel {
		// Same contract as Profile: the single-consumer cache and accuracy
		// monitor need the deterministic scheduler's serialized probe.
		dopts.RedundancyCacheBits = opts.RedundancyCacheBits
		dopts.Accuracy, err = newAccuracyMonitor(opts, threads, probes)
		if err != nil {
			return nil, err
		}
	}
	d, err := detect.New(dopts)
	if err != nil {
		return nil, err
	}
	eng := exec.New(exec.Options{
		Threads: threads, Probe: d.Probe(), Parallel: opts.Parallel,
		Probes: probes.EngineProbes(),
	})
	tel.wireRun(eng, d, backend, nil)
	run := tel.span("engine-run")
	stats, err := eng.Run(func(et *exec.Thread) { body(&Thread{t: et}) })
	run.End()
	if err != nil {
		return nil, err
	}
	rep, tree, err := buildReport("custom", threads, d, stats, backend.FootprintBytes(), opts.MaxHotspots, tel)
	if err != nil {
		return nil, err
	}
	attachAccuracy(rep, d, opts, threads, backend, tel)
	tel.finishRun(rep, tree)
	return rep, nil
}

// newSeededRand isolates math/rand construction so the facade has a single
// seeding convention.
func newSeededRand(seed int64) *rand.Rand {
	if seed == 0 {
		seed = 42
	}
	return rand.New(rand.NewSource(seed))
}
