package commprof

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func profileWithTelemetry(t *testing.T, tel *Telemetry) *Report {
	t.Helper()
	rep, err := Profile(Options{Workload: "fft", Threads: 8, Telemetry: tel})
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	return rep
}

func TestTelemetryReportAttached(t *testing.T) {
	tel := NewTelemetry()
	rep := profileWithTelemetry(t, tel)
	if rep.Telemetry == nil {
		t.Fatal("Report.Telemetry is nil despite Options.Telemetry")
	}
	tr := rep.Telemetry
	if tr.Counters["detect_events_total"] == 0 {
		t.Errorf("detect_events_total = 0; counters: %v", tr.Counters)
	}
	if tr.Counters["sig_filter_allocs_total"] == 0 {
		t.Error("sig_filter_allocs_total = 0: no bloom filters allocated?")
	}
	if tr.Counters["exec_quantum_switches_total"] == 0 {
		t.Error("exec_quantum_switches_total = 0 on deterministic run")
	}
	if tr.Gauges["exec_logical_clock"] <= 0 {
		t.Errorf("exec_logical_clock = %v", tr.Gauges["exec_logical_clock"])
	}
	if occ := tr.Gauges["sig_slot_occupancy"]; occ <= 0 || occ > 1 {
		t.Errorf("sig_slot_occupancy = %v, want (0,1]", occ)
	}
	if tr.Gauges["comm_tree_nodes"] <= 0 {
		t.Errorf("comm_tree_nodes = %v", tr.Gauges["comm_tree_nodes"])
	}
	h, ok := tr.Histograms["detect_event_bytes"]
	if !ok || h.Count == 0 {
		t.Errorf("detect_event_bytes histogram empty: %+v", h)
	}
	var names []string
	for _, sp := range tr.Spans {
		names = append(names, sp.Name)
		if sp.WallNanos < 0 {
			t.Errorf("span %s has negative wall time %d", sp.Name, sp.WallNanos)
		}
	}
	for _, want := range []string{"workload-setup", "engine-run", "tree-build", "report"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("span %q missing; got %v", want, names)
		}
	}
	// The engine-run span must cover logical time: its end clock equals the
	// run's final clock and exceeds its start.
	for _, sp := range tr.Spans {
		if sp.Name == "engine-run" && sp.EndClock <= sp.StartClock {
			t.Errorf("engine-run span clocks [%d,%d] did not advance", sp.StartClock, sp.EndClock)
		}
	}
}

func TestTelemetryNilIsNoop(t *testing.T) {
	var tel *Telemetry
	if err := tel.WriteProm(io.Discard); err != nil {
		t.Errorf("nil WriteProm: %v", err)
	}
	if err := tel.WriteJSON(io.Discard); err != nil {
		t.Errorf("nil WriteJSON: %v", err)
	}
	if err := tel.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if got := tel.Progress(); got.Accesses != 0 || got.Phase != "" || got.PerThread != nil {
		t.Errorf("nil Progress = %+v", got)
	}
	if _, err := tel.Serve(":0"); err == nil {
		t.Error("nil Serve should error")
	}
	// A run without telemetry must still work and leave Report.Telemetry nil.
	rep, err := Profile(Options{Workload: "fft", Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Telemetry != nil {
		t.Error("Report.Telemetry set without Options.Telemetry")
	}
}

func TestTelemetryProgressSnapshot(t *testing.T) {
	tel := NewTelemetry()
	rep := profileWithTelemetry(t, tel)
	p := tel.Progress()
	if p.Accesses != rep.Accesses {
		t.Errorf("Progress.Accesses = %d, report says %d", p.Accesses, rep.Accesses)
	}
	if p.Dependencies != rep.Dependencies {
		t.Errorf("Progress.Dependencies = %d, report says %d", p.Dependencies, rep.Dependencies)
	}
	if p.Clock == 0 {
		t.Error("Progress.Clock = 0 after a run")
	}
	if len(p.PerThread) != 8 {
		t.Fatalf("PerThread has %d entries, want 8", len(p.PerThread))
	}
	var sum uint64
	for _, v := range p.PerThread {
		sum += v
	}
	if sum != rep.Accesses {
		t.Errorf("per-thread accesses sum to %d, report says %d", sum, rep.Accesses)
	}
	if p.SigFilters == 0 || p.SigOccupancy <= 0 {
		t.Errorf("signature stats empty: filters=%d occupancy=%v", p.SigFilters, p.SigOccupancy)
	}
	if p.Phase != "" {
		t.Errorf("Phase = %q after run completed, want idle", p.Phase)
	}
}

func TestTelemetryPromExport(t *testing.T) {
	tel := NewTelemetry()
	profileWithTelemetry(t, tel)
	var buf bytes.Buffer
	if err := tel.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE detect_events_total counter",
		"# TYPE sig_slot_occupancy gauge",
		"# TYPE detect_event_bytes histogram",
		`detect_event_bytes_bucket{le="+Inf"}`,
		"detect_event_bytes_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom export missing %q", want)
		}
	}
	buf.Reset()
	if err := tel.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
}

func TestTelemetryServeLive(t *testing.T) {
	tel := NewTelemetry()
	addr, err := tel.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tel.Close()
	if _, err := tel.Serve("127.0.0.1:0"); err == nil {
		t.Error("second Serve should error while the first is running")
	}
	profileWithTelemetry(t, tel)

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if out := get("/metrics"); !strings.Contains(out, "detect_events_total") {
		t.Errorf("/metrics missing counters:\n%s", out)
	}
	var progress struct {
		Snapshot ProgressSnapshot `json:"snapshot"`
	}
	if err := json.Unmarshal([]byte(get("/progress")), &progress); err != nil {
		t.Fatalf("/progress is not JSON: %v", err)
	}
	if progress.Snapshot.Accesses == 0 {
		t.Error("/progress snapshot has zero accesses after a run")
	}
	var metricsJSON map[string]any
	if err := json.Unmarshal([]byte(get("/metrics.json")), &metricsJSON); err != nil {
		t.Fatalf("/metrics.json is not JSON: %v", err)
	}
	if err := tel.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := tel.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// After Close a fresh Serve must be possible.
	if _, err := tel.Serve("127.0.0.1:0"); err != nil {
		t.Fatalf("Serve after Close: %v", err)
	}
	tel.Close()
}

func TestTelemetryReuseAcrossRuns(t *testing.T) {
	tel := NewTelemetry()
	first := profileWithTelemetry(t, tel)
	second := profileWithTelemetry(t, tel)
	f := first.Telemetry.Counters["detect_events_total"]
	s := second.Telemetry.Counters["detect_events_total"]
	if s != 2*f {
		t.Errorf("counters should accumulate across runs: first %d, second %d", f, s)
	}
	if len(second.Telemetry.Spans) != 2*len(first.Telemetry.Spans) {
		t.Errorf("spans should accumulate: first %d, second %d",
			len(first.Telemetry.Spans), len(second.Telemetry.Spans))
	}
}

func TestTelemetryWithRunAndMiniPar(t *testing.T) {
	tel := NewTelemetry()
	regions := []Region{{Name: "main", Parent: -1}, {Name: "loop", Parent: 0, Loop: true}}
	rep, err := Run(4, regions, func(th *Thread) {
		th.InRegion(1, func() {
			if th.ID() == 0 {
				th.Write(64, 8)
			}
			th.Barrier()
			if th.ID() != 0 {
				th.Read(64, 8)
			}
		})
	}, Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Telemetry == nil || rep.Telemetry.Counters["detect_events_total"] == 0 {
		t.Fatalf("Run telemetry not wired: %+v", rep.Telemetry)
	}

	tel2 := NewTelemetry()
	src := `
array A[64];
func main() {
  parfor i = 0..64 { A[i] = i; }
  barrier;
  if tid == 0 { out A[0]; }
}`
	mrep, _, err := ProfileMiniPar(src, 4, nil, Options{Telemetry: tel2})
	if err != nil {
		t.Fatal(err)
	}
	if mrep.Telemetry == nil {
		t.Fatal("ProfileMiniPar telemetry not wired")
	}
}
