package commprof

import (
	"strings"
	"testing"
)

// TestRegionLabelsFromRealSource pins the satellite contract for instrumented
// real programs: regions that carry a source position surface in the report
// as "name file.go:line" — in the region tree, the hotspot ranking and the
// summary — while synthetic regions keep their bare kernel names.
func TestRegionLabelsFromRealSource(t *testing.T) {
	regions := []Region{
		{Name: "worker", Parent: -1, File: "pool.go", Line: 17},
		{Name: "worker#for1", Parent: 0, Loop: true, File: "pool.go", Line: 21},
		{Name: "daxpy#1", Parent: -1, Loop: true}, // synthetic: no position
	}
	var accs []Access
	// Thread 0 writes a block inside the instrumented loop; thread 1 reads it
	// back, producing cross-thread RAW volume attributed to the loop region.
	for i := 0; i < 8; i++ {
		accs = append(accs, Access{Kind: WriteAccess, Addr: 0x1000 + uint64(8*i), Size: 8, Thread: 0, Region: 1, Time: uint64(2 * i)})
		accs = append(accs, Access{Kind: ReadAccess, Addr: 0x1000 + uint64(8*i), Size: 8, Thread: 1, Region: 1, Time: uint64(2*i + 1)})
	}
	rep, err := ProfileTrace(accs, regions, 2, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}

	byName := map[string]RegionReport{}
	for _, r := range rep.Regions {
		byName[r.Name] = r
	}
	loop, ok := byName["worker#for1 pool.go:21"]
	if !ok {
		t.Fatalf("loop region label missing; got regions %v", keys(byName))
	}
	if loop.File != "pool.go" || loop.Line != 21 {
		t.Fatalf("loop region File:Line = %s:%d, want pool.go:21", loop.File, loop.Line)
	}
	if _, ok := byName["worker pool.go:17"]; !ok {
		t.Fatalf("function region label missing; got regions %v", keys(byName))
	}
	if _, ok := byName["daxpy#1"]; !ok {
		t.Fatalf("synthetic region lost its bare name; got regions %v", keys(byName))
	}

	if len(rep.Hotspots) == 0 || rep.Hotspots[0].Region != "worker#for1 pool.go:21" {
		t.Fatalf("hotspot label = %v, want the loop's file:line label", rep.Hotspots)
	}
	if !strings.Contains(rep.Summary(), "worker#for1 pool.go:21") {
		t.Fatal("summary does not render the file:line region label")
	}
}

func keys(m map[string]RegionReport) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
