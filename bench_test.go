package commprof

// The bench harness: one testing.B per table and figure of the paper's
// evaluation (DESIGN.md §4 maps IDs to packages). Each benchmark regenerates
// its artifact from live runs and reports the headline quantity as a custom
// metric, so `go test -bench=. -benchmem` reproduces the whole evaluation.
//
// Benchmarks run at 8 threads / simdev by default to keep iterations
// bounded; cmd/commbench runs the paper's full 32-thread configuration.

import (
	"testing"

	"commprof/internal/experiments"
	"commprof/internal/sig"
	"commprof/internal/splash"
)

func benchEnv() experiments.Env {
	env := experiments.DefaultEnv()
	env.Threads = 8
	return env
}

// BenchmarkTable1Properties regenerates Table I with measured overheads.
func BenchmarkTable1Properties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(benchEnv(), splash.SimDev)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeasuredSlowdownAvg, "avg-slowdown-x")
		b.ReportMetric(float64(res.MeasuredSigMemBytes)/(1<<20), "sigmem-MB")
	}
}

// BenchmarkFig4Slowdown regenerates the per-application slowdown figure.
func BenchmarkFig4Slowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(benchEnv(), splash.SimDev)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Average, "avg-slowdown-x")
		b.ReportMetric(res.Max, "max-slowdown-x")
		b.ReportMetric(res.Min, "min-slowdown-x")
	}
}

// BenchmarkFig5aMemory regenerates the simdev memory-consumption panel.
func BenchmarkFig5aMemory(b *testing.B) {
	benchFig5(b, splash.SimDev)
}

// BenchmarkFig5bMemory regenerates the simlarge memory-consumption panel.
func BenchmarkFig5bMemory(b *testing.B) {
	benchFig5(b, splash.SimLarge)
}

func benchFig5(b *testing.B, size splash.Size) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(benchEnv(), size)
		if err != nil {
			b.Fatal(err)
		}
		var disco, helgrindP float64
		for _, r := range res.Rows {
			disco += float64(r.DiscoPoP)
			helgrindP += float64(r.HelgrindPlus)
		}
		n := float64(len(res.Rows))
		b.ReportMetric(disco/n/(1<<20), "discopop-avg-MB")
		b.ReportMetric(helgrindP/n/(1<<20), "helgrind+-avg-MB")
	}
}

// BenchmarkFPRSweep regenerates the §V-A3 false-positive-rate sweep.
func BenchmarkFPRSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.FPRSweep(benchEnv(), splash.SimDev, nil)
		if err != nil {
			b.Fatal(err)
		}
		slots := res.Slots
		b.ReportMetric(100*res.Averages[slots[0]], "fpr-smallest-%")
		b.ReportMetric(100*res.Averages[slots[len(slots)-1]], "fpr-largest-%")
	}
}

// BenchmarkFig6NestedLu regenerates the lu_ncb nested-pattern figure.
func BenchmarkFig6NestedLu(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchEnv(), splash.SimDev)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Hotspots)), "hotspots")
	}
}

// BenchmarkFig7NestedWater regenerates the water_nsquared nested-pattern
// figure.
func BenchmarkFig7NestedWater(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchEnv(), splash.SimDev)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Tree.Global.Total()), "comm-bytes")
	}
}

// BenchmarkFig8ThreadLoad regenerates the Eq. 1 workload-distribution figure.
func BenchmarkFig8ThreadLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchEnv(), splash.SimDev)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.App == "radix" {
				b.ReportMetric(float64(row.Summary.Active), "radix-active-threads")
			}
		}
	}
}

// BenchmarkPatternClassify regenerates the §VI pattern-detection experiment.
func BenchmarkPatternClassify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Patterns(benchEnv(), splash.SimDev)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.KNNCleanAccuracy, "knn-accuracy-%")
		b.ReportMetric(100*res.KNNNoisyAccuracy, "knn-noisy-accuracy-%")
	}
}

// BenchmarkEq2SigMem measures the Eq. 2 closed form (and pins the paper's
// ≈580 MB operating point as a metric).
func BenchmarkEq2SigMem(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += sig.SigMem(10_000_000, 32, 0.001)
	}
	b.ReportMetric(float64(sink/uint64(b.N))/(1<<20), "paper-point-MB")
}

// BenchmarkProfileEndToEnd measures one full Profile call (the public API
// path a downstream user hits).
func BenchmarkProfileEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := Profile(Options{Workload: "lu_ncb", Threads: 8})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Dependencies == 0 {
			b.Fatal("no dependencies")
		}
	}
}

// BenchmarkSamplingAblation regenerates the §VII read-sampling ablation.
func BenchmarkSamplingAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.SamplingAblation(benchEnv(), "lu_ncb", splash.SimDev)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Speedup, "speedup-at-1/16")
		b.ReportMetric(last.Fidelity, "fidelity-at-1/16")
	}
}

// BenchmarkSparseAblation regenerates the §VII sparse-matrix ablation.
func BenchmarkSparseAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.SparseAblation(benchEnv(), splash.SimDev)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.Label == "ring-4096" {
				b.ReportMetric(float64(r.DenseBytes)/float64(r.SparseBytes), "ring4096-dense/sparse")
			}
		}
	}
}

// BenchmarkThroughputComparison regenerates the profiler-throughput table.
func BenchmarkThroughputComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Throughput(benchEnv(), "ocean_cp", splash.SimDev)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.Name == "discopop" {
				b.ReportMetric(r.MEventsPerS, "discopop-Mev/s")
			}
		}
	}
}

// BenchmarkPhasesSegmentation regenerates the §V-A4 dynamic-behaviour demo.
func BenchmarkPhasesSegmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Phases(benchEnv(), "radix", splash.SimDev)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Phases)), "phases")
	}
}

// BenchmarkHashAblation regenerates the §IV-D2 hash-quality comparison.
func BenchmarkHashAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.HashAblation(benchEnv(), splash.SimDev, 0)
		if err != nil {
			b.Fatal(err)
		}
		var m, f float64
		for _, r := range res.Rows {
			m += r.MurmurFPR
			f += r.FoldFPR
		}
		n := float64(len(res.Rows))
		b.ReportMetric(100*m/n, "murmur-fpr-%")
		b.ReportMetric(100*f/n, "fold-fpr-%")
	}
}
