package commprof

import (
	"fmt"
	"runtime"
	"time"

	"commprof/internal/accuracy"
	"commprof/internal/comm"
	"commprof/internal/detect"
	"commprof/internal/exec"
	"commprof/internal/obs"
	"commprof/internal/pipeline"
	"commprof/internal/splash"
	"commprof/internal/trace"
)

// ShardPolicy names the sharded analyser's overload behaviour (what happens
// to producers while a shard queue is full).
type ShardPolicy string

const (
	// ShardPolicyBlock (the default) applies backpressure: producers block
	// until the shard worker catches up. Analysis stays exhaustive; producer
	// speed follows the slowest shard.
	ShardPolicyBlock ShardPolicy = "block"
	// ShardPolicyDegrade degrades to read sampling under overload: while a
	// shard queue is saturated, only a burst fraction of reads is enqueued
	// and the rest are dropped and counted (Report.Pipeline.DroppedReads).
	// Writes are never dropped — losing a write would corrupt last-writer
	// attribution rather than merely losing volume.
	ShardPolicyDegrade ShardPolicy = "degrade"
	// ShardPolicyAuto adapts between the two: exhaustive (blocking) analysis
	// until producer stall episodes show sustained overload, then degrade
	// until every shard queue drains, then exhaustive again. Mode switches
	// are counted in Report.Pipeline.PolicyTransitions; a run that never
	// overloads behaves exactly like ShardPolicyBlock.
	ShardPolicyAuto ShardPolicy = "auto"
)

func (p ShardPolicy) toInternal() (pipeline.OverloadPolicy, error) {
	switch p {
	case "", ShardPolicyBlock:
		return pipeline.PolicyBlock, nil
	case ShardPolicyDegrade:
		return pipeline.PolicyDegrade, nil
	case ShardPolicyAuto:
		return pipeline.PolicyAuto, nil
	}
	return 0, fmt.Errorf("commprof: unknown shard policy %q (want %q, %q or %q)", p, ShardPolicyBlock, ShardPolicyDegrade, ShardPolicyAuto)
}

// newPipeline maps the public Options onto a sharded analysis engine whose
// shards partition the configured signature slot budget. ps (nil when
// PhaseWindow is unset) supplies the windowed phase layer's close callback
// and probes.
func newPipeline(opts Options, threads int, table *trace.Table, probes *obs.Probes, ps *phaseState) (*pipeline.Engine, error) {
	shards := opts.AnalysisShards
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards < 0 {
		return nil, fmt.Errorf("commprof: AnalysisShards must be non-negative, got %d", opts.AnalysisShards)
	}
	policy, err := opts.ShardPolicy.toInternal()
	if err != nil {
		return nil, err
	}
	return pipeline.New(pipeline.Options{
		Shards:              shards,
		Threads:             threads,
		Table:               table,
		GranularityBits:     opts.GranularityBits,
		QueueCapacity:       opts.ShardQueueCapacity,
		BatchSize:           opts.ShardBatchSize,
		Policy:              policy,
		RedundancyCacheBits: opts.RedundancyCacheBits,
		Accuracy:            opts.accuracyOptions(threads, probes),
		NewBackend:          pipeline.AsymmetricFactory(opts.SignatureSlots, shards, threads, opts.BloomFPRate, probes.SigProbes()),
		Probes:              probes.PipelineProbes(),
		DetectProbes:        probes.DetectProbes(),
		PhaseWindow:         opts.PhaseWindow,
		OnWindowClose:       ps.onClose(),
		PhaseProbes:         probes.PhaseProbes(),
		Stages:              probes.StageProbes(),
		Overhead:            probes.OverheadProbes(),
		Timeline:            opts.Telemetry.Timeline(),
	})
}

// attachAccuracySharded renders a closed pipeline engine's merged per-shard
// accuracy monitors into Report.Accuracy; the sharded counterpart of
// attachAccuracy. A no-op when the run was unmonitored.
func attachAccuracySharded(rep *Report, pe *pipeline.Engine, opts Options, threads int, tel *Telemetry) {
	est, ok := pe.AccuracyEstimate()
	if !ok {
		return
	}
	fill := pe.FillRatio(256)
	pe.EvaluateAccuracy(fill)
	rec := accuracy.Recommend(est, opts.SignatureSlots, threads, opts.BloomFPRate)
	alarm, _ := pe.AccuracyAlarm()
	rep.Accuracy = accuracyReport(est, rec, pe.AccuracyShadowBytes(), fill, tel.fillTrajectory(), alarm)
}

// sampledProbe composes read sampling in front of the pipeline: the same
// burst-of-period per-thread gate as detect.Sampler, applied before enqueue
// so skipped reads never cost a queue slot.
func sampledProbe(inner exec.Probe, threads int, burst, period uint32) (exec.Probe, float64, error) {
	gate, err := detect.NewGate(threads, burst, period)
	if err != nil {
		return nil, 0, err
	}
	probe := func(a trace.Access) {
		if a.Kind == trace.Read && !gate.Admit(a.Thread) {
			return
		}
		inner(a)
	}
	return probe, gate.Fraction(), nil
}

// profileSharded is Profile's pipeline-backed analysis path
// (Options.AnalysisShards > 0).
func profileSharded(opts Options, prog splash.Program, tel *Telemetry, probes *obs.Probes, setup *obs.SpanHandle) (*Report, error) {
	ps, err := newPhaseState(opts, prog.Table(), tel, probes)
	if err != nil {
		return nil, err
	}
	pe, err := newPipeline(opts, opts.Threads, prog.Table(), probes, ps)
	if err != nil {
		return nil, err
	}
	// Producer-side staging amortises shard-queue locking the way
	// ProcessStream always did for replay. In parallel engine mode each
	// thread produces only its own accesses, so a per-thread producer is
	// contention-free; staging merely widens the enqueue-order race the mode
	// already accepts. The deterministic scheduler funnels every thread's
	// accesses through one serialized probe, so a single producer flushed on
	// thread switches (= quantum boundaries) preserves the exact global
	// arrival order.
	var probe exec.Probe
	var flushProducers func()
	if opts.Parallel {
		producers := make([]*pipeline.Producer, opts.Threads)
		for i := range producers {
			producers[i] = pe.NewProducer(false)
		}
		probe = func(a trace.Access) { producers[a.Thread].Process(a) }
		flushProducers = func() {
			for _, p := range producers {
				p.Flush()
			}
		}
	} else {
		p := pe.NewProducer(true)
		probe = p.Process
		flushProducers = p.Flush
	}
	sampleFraction := 1.0
	if opts.SamplePeriod > 0 {
		probe, sampleFraction, err = sampledProbe(probe, opts.Threads, opts.SampleBurst, opts.SamplePeriod)
		if err != nil {
			return nil, err
		}
	}
	eng := exec.New(exec.Options{
		Threads: opts.Threads, Probe: probe, Parallel: opts.Parallel,
		Probes: probes.EngineProbes(),
	})
	tel.wireRunSharded(eng, pe)
	ps.wire(pe.AdvancePhases)
	setup.End()
	run := tel.span("engine-run")
	stats, err := prog.Run(eng)
	run.End()
	if err != nil {
		pe.Close()
		return nil, err
	}
	drain := tel.span("pipeline-drain")
	flushProducers()
	pe.Close()
	drain.End()
	rep, tree, err := buildReportSharded(opts.Workload, opts.Threads, pe, stats, opts.MaxHotspots, tel)
	if err != nil {
		return nil, err
	}
	attachAccuracySharded(rep, pe, opts, opts.Threads, tel)
	if err := attachPhasesSharded(rep, pe, ps); err != nil {
		return nil, err
	}
	rep.SampleFraction = sampleFraction
	tel.finishRun(rep, tree)
	return rep, nil
}

// attachPhasesSharded renders a closed pipeline engine's merged window set
// into the report's phase sections. A no-op without PhaseWindow.
func attachPhasesSharded(rep *Report, pe *pipeline.Engine, ps *phaseState) error {
	if ps == nil {
		return nil
	}
	ws, err := pe.PhaseWindows()
	if err != nil {
		return err
	}
	ps.attach(rep, ws)
	return nil
}

// buildReportSharded drains a closed pipeline engine into the public report
// form, attaching the Pipeline section.
func buildReportSharded(name string, threads int, pe *pipeline.Engine, stats exec.Stats, maxHotspots int, tel *Telemetry) (*Report, *comm.Tree, error) {
	build := tel.span("tree-build")
	stages := tel.probes().StageProbes()
	var t0 time.Time
	if stages != nil {
		t0 = time.Now()
	}
	tree, err := pe.Tree()
	if err != nil {
		return nil, nil, err
	}
	if err := tree.CheckSummationLaw(); err != nil {
		return nil, nil, fmt.Errorf("commprof: internal invariant violated: %w", err)
	}
	if stages != nil {
		stages.Merge.Observe(uint64(time.Since(t0)))
	}
	build.End()
	st := pe.Stats()
	rep, tree, err := reportFromTree(name, threads, tree, st.Detected, st.CommBytes, stats, pe.SigFootprintBytes(), maxHotspots, tel)
	if err != nil {
		return nil, nil, err
	}
	rep.Pipeline = pipelineReport(pe)
	if rst, ok := pe.RedundancyStats(); ok {
		rep.Redundancy = redundancyReport(rst)
	}
	return rep, tree, nil
}

// pipelineReport snapshots a closed engine's shard configuration and load.
func pipelineReport(pe *pipeline.Engine) *PipelineReport {
	sstats := pe.ShardStats()
	rep := &PipelineReport{
		Shards:               pe.Shards(),
		QueueCapacity:        pe.QueueCapacity(),
		BatchSize:            pe.BatchSize(),
		Policy:               pe.Policy().String(),
		PolicyTransitions:    pe.PolicyTransitions(),
		DroppedReads:         pe.Stats().DroppedReads,
		ProducerFlushes:      pe.ProducerFlushes(),
		PeakResidentAccesses: pe.PeakResidentAccesses(),
		PeakDepths:           make([]int, len(sstats)),
		ShardProcessed:       make([]uint64, len(sstats)),
	}
	for i, s := range sstats {
		rep.PeakDepths[i] = s.PeakDepth
		rep.ShardProcessed[i] = s.Processed
	}
	return rep
}

// ProfileTraceParallel analyses a recorded access trace with the sharded
// parallel pipeline instead of ProfileTrace's serial detector: addresses are
// hashed across Options.AnalysisShards analysis shards (0 = GOMAXPROCS), each
// with a private partition of the signature budget and its own worker. On a
// collision-free run the result is identical to ProfileTrace; with the
// approximate asymmetric signature the expected false-positive rate matches
// but the specific collisions differ (see the internal/pipeline package
// documentation).
func ProfileTraceParallel(accesses []Access, regions []Region, threads int, opts Options) (*Report, error) {
	opts.setDefaults()
	if threads <= 0 {
		return nil, fmt.Errorf("commprof: threads must be positive, got %d", threads)
	}
	table, err := buildTable(regions)
	if err != nil {
		return nil, err
	}
	tel := opts.Telemetry
	probes := tel.probes()
	ps, err := newPhaseState(opts, table, tel, probes)
	if err != nil {
		return nil, err
	}
	pe, err := newPipeline(opts, threads, table, probes, ps)
	if err != nil {
		return nil, err
	}
	tel.wireRunSharded(nil, pe)
	ps.wire(pe.AdvancePhases)
	var gate *detect.Gate
	sampleFraction := 1.0
	if opts.SamplePeriod > 0 {
		gate, err = detect.NewGate(threads, opts.SampleBurst, opts.SamplePeriod)
		if err != nil {
			return nil, err
		}
		sampleFraction = gate.Fraction()
	}
	// Feed a staging producer directly instead of materialising a converted
	// copy of the stream: the caller's slice is the only O(accesses) state.
	var stats exec.Stats
	producer := pe.NewProducer(false)
	for i, a := range accesses {
		if a.Thread < 0 || int(a.Thread) >= threads {
			pe.Close()
			return nil, fmt.Errorf("commprof: access %d has thread %d out of range", i, a.Thread)
		}
		if a.Region != trace.NoRegion && (a.Region < 0 || int(a.Region) >= table.Len()) {
			pe.Close()
			return nil, fmt.Errorf("commprof: access %d references unknown region %d", i, a.Region)
		}
		k := trace.Read
		if a.Kind == WriteAccess {
			k = trace.Write
			stats.Writes++
		} else {
			stats.Reads++
		}
		stats.Accesses++
		if gate != nil && k == trace.Read && !gate.Admit(a.Thread) {
			continue
		}
		producer.Process(trace.Access{
			Time: a.Time, Addr: a.Addr, Size: a.Size,
			Thread: a.Thread, Region: a.Region, Kind: k,
		})
	}
	producer.Flush()
	pe.Close()
	rep, tree, err := buildReportSharded("trace", threads, pe, stats, opts.MaxHotspots, tel)
	if err != nil {
		return nil, err
	}
	attachAccuracySharded(rep, pe, opts, threads, tel)
	if err := attachPhasesSharded(rep, pe, ps); err != nil {
		return nil, err
	}
	rep.SampleFraction = sampleFraction
	tel.finishRun(rep, tree)
	return rep, nil
}
