package commprof

import (
	"fmt"
	"sort"

	"commprof/internal/detect"
	"commprof/internal/exec"
	"commprof/internal/interp"
	"commprof/internal/passes"
	"commprof/internal/sig"
	"commprof/internal/trace"
)

// MiniParOutput is one value a MiniPar program emitted with `out`, in
// emission order.
type MiniParOutput struct {
	Thread int32
	Value  int64
}

// ProfileMiniPar compiles MiniPar source through the full static pipeline —
// parsing, loop annotation (the paper's Listing 1), constant folding,
// lowering, probe insertion and verification — then executes it SPMD on
// threads simulated threads with the profiler attached.
//
// onlyFuncs, when non-empty, restricts instrumentation to the named
// functions (the paper's §IV-A decomposition into analysed and unanalysed
// code); an empty slice instruments the whole program.
//
// See the package example under examples/miniparlang and cmd/minipar for the
// language reference (grammar documented in the internal front end):
//
//	array A[256];
//	func main() {
//	  parfor i = 0..256 { A[i] = i; }   // block-partitioned across threads
//	  barrier;
//	  if tid == 0 { out A[0]; }
//	}
func ProfileMiniPar(src string, threads int, onlyFuncs []string, opts Options) (*Report, []MiniParOutput, error) {
	opts.setDefaults()
	if threads <= 0 {
		return nil, nil, fmt.Errorf("commprof: threads must be positive, got %d", threads)
	}
	var only map[string]bool
	if len(onlyFuncs) > 0 {
		only = map[string]bool{}
		for _, f := range onlyFuncs {
			only[f] = true
		}
	}
	mod, table, cs, err := passes.CompileWith(src, passes.Options{
		Only: only, Coalesce: !opts.DisableCoalesce,
	})
	if err != nil {
		return nil, nil, err
	}
	rt, err := interp.New(mod)
	if err != nil {
		return nil, nil, err
	}
	tel := opts.Telemetry
	probes := tel.probes()
	backend, err := sig.NewAsymmetric(sig.Options{
		Slots: opts.SignatureSlots, Threads: threads, FPRate: opts.BloomFPRate,
		Probes: probes.SigProbes(),
	})
	if err != nil {
		return nil, nil, err
	}
	d, err := detect.New(detect.Options{
		Threads: threads, Backend: backend, Table: table,
		GranularityBits: opts.GranularityBits,
		Probes:          probes.DetectProbes(),
	})
	if err != nil {
		return nil, nil, err
	}
	eng := exec.New(exec.Options{
		Threads: threads, Probe: d.Probe(), Parallel: opts.Parallel,
		Probes: probes.EngineProbes(),
	})
	tel.wireRun(eng, d, backend, nil)
	run := tel.span("engine-run")
	stats, err := rt.Run(eng)
	run.End()
	if err != nil {
		return nil, nil, err
	}
	rep, tree, err := buildReport("minipar", threads, d, stats, backend.FootprintBytes(), opts.MaxHotspots, tel)
	if err != nil {
		return nil, nil, err
	}
	if !opts.DisableCoalesce {
		rep.Coalescing = coalescingReport(cs, stats, rt, table)
	}
	tel.finishRun(rep, tree)
	var outs []MiniParOutput
	for _, o := range rt.Outputs() {
		outs = append(outs, MiniParOutput{Thread: o.Thread, Value: o.Value})
	}
	return rep, outs, nil
}

// coalescingReport assembles Report.Coalescing from the static pass stats and
// the runtime's per-region elided counters.
func coalescingReport(cs passes.CoalesceStats, stats exec.Stats, rt *interp.Runtime, table *trace.Table) *CoalescingReport {
	rep := &CoalescingReport{
		StaticElided: cs.Elided,
		StaticOnce:   cs.Once,
		Elided:       stats.Elided,
		Emitted:      stats.Accesses - stats.Elided,
	}
	for id, n := range rt.ElidedByRegion() {
		name := fmt.Sprintf("region#%d", id)
		if r, err := table.Region(id); err == nil {
			name = r.Name
		}
		rep.Regions = append(rep.Regions, CoalescingRegion{Region: name, Elided: n})
	}
	sort.Slice(rep.Regions, func(i, j int) bool {
		if rep.Regions[i].Elided != rep.Regions[j].Elided {
			return rep.Regions[i].Elided > rep.Regions[j].Elided
		}
		return rep.Regions[i].Region < rep.Regions[j].Region
	})
	return rep
}
