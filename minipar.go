package commprof

import (
	"fmt"

	"commprof/internal/detect"
	"commprof/internal/exec"
	"commprof/internal/interp"
	"commprof/internal/passes"
	"commprof/internal/sig"
)

// MiniParOutput is one value a MiniPar program emitted with `out`, in
// emission order.
type MiniParOutput struct {
	Thread int32
	Value  int64
}

// ProfileMiniPar compiles MiniPar source through the full static pipeline —
// parsing, loop annotation (the paper's Listing 1), constant folding,
// lowering, probe insertion and verification — then executes it SPMD on
// threads simulated threads with the profiler attached.
//
// onlyFuncs, when non-empty, restricts instrumentation to the named
// functions (the paper's §IV-A decomposition into analysed and unanalysed
// code); an empty slice instruments the whole program.
//
// See the package example under examples/miniparlang and cmd/minipar for the
// language reference (grammar documented in the internal front end):
//
//	array A[256];
//	func main() {
//	  parfor i = 0..256 { A[i] = i; }   // block-partitioned across threads
//	  barrier;
//	  if tid == 0 { out A[0]; }
//	}
func ProfileMiniPar(src string, threads int, onlyFuncs []string, opts Options) (*Report, []MiniParOutput, error) {
	opts.setDefaults()
	if threads <= 0 {
		return nil, nil, fmt.Errorf("commprof: threads must be positive, got %d", threads)
	}
	var only map[string]bool
	if len(onlyFuncs) > 0 {
		only = map[string]bool{}
		for _, f := range onlyFuncs {
			only[f] = true
		}
	}
	mod, table, err := passes.Compile(src, only)
	if err != nil {
		return nil, nil, err
	}
	rt, err := interp.New(mod)
	if err != nil {
		return nil, nil, err
	}
	tel := opts.Telemetry
	probes := tel.probes()
	backend, err := sig.NewAsymmetric(sig.Options{
		Slots: opts.SignatureSlots, Threads: threads, FPRate: opts.BloomFPRate,
		Probes: probes.SigProbes(),
	})
	if err != nil {
		return nil, nil, err
	}
	d, err := detect.New(detect.Options{
		Threads: threads, Backend: backend, Table: table,
		Probes: probes.DetectProbes(),
	})
	if err != nil {
		return nil, nil, err
	}
	eng := exec.New(exec.Options{
		Threads: threads, Probe: d.Probe(), Parallel: opts.Parallel,
		Probes: probes.EngineProbes(),
	})
	tel.wireRun(eng, d, backend, nil)
	run := tel.span("engine-run")
	stats, err := rt.Run(eng)
	run.End()
	if err != nil {
		return nil, nil, err
	}
	rep, tree, err := buildReport("minipar", threads, d, stats, backend.FootprintBytes(), opts.MaxHotspots, tel)
	if err != nil {
		return nil, nil, err
	}
	tel.finishRun(rep, tree)
	var outs []MiniParOutput
	for _, o := range rt.Outputs() {
		outs = append(outs, MiniParOutput{Thread: o.Thread, Value: o.Value})
	}
	return rep, outs, nil
}
