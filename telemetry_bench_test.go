package commprof

import (
	"testing"

	"commprof/internal/detect"
	"commprof/internal/exec"
	"commprof/internal/obs"
	"commprof/internal/sig"
	"commprof/internal/trace"
)

// BenchmarkProbeOverhead isolates the cost of the self-observability hooks on
// the engine hot path. The acceptance bar for this layer is that
// "uninstrumented" (hooks compiled in but disabled via nil probe bundles)
// stays within a few percent of what the engine cost before the hooks
// existed, and the sub-benchmarks quantify the step to live counters and to
// the full profiler.
//
//	go test -bench=ProbeOverhead -benchtime=2s .
func BenchmarkProbeOverhead(b *testing.B) {
	const (
		threads   = 8
		perThread = 4096
	)
	body := func(t *exec.Thread) {
		base := uint64(t.ID()) << 32
		for i := uint64(0); i < perThread; i++ {
			t.Write(base+i*8, 8)
			t.Read(base+i*8, 8)
		}
		t.Barrier()
	}
	accesses := float64(threads * perThread * 2)
	run := func(b *testing.B, mk func() exec.Options) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			eng := exec.New(mk())
			if _, err := eng.Run(body); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/accesses, "ns/access")
	}

	b.Run("uninstrumented", func(b *testing.B) {
		run(b, func() exec.Options {
			return exec.Options{Threads: threads} // nil Probe, nil Probes
		})
	})

	b.Run("obs-enabled", func(b *testing.B) {
		reg := obs.NewRegistry()
		probes := obs.DefaultProbes(reg)
		run(b, func() exec.Options {
			return exec.Options{Threads: threads, Probes: probes.EngineProbes()}
		})
	})

	b.Run("full-profiler", func(b *testing.B) {
		reg := obs.NewRegistry()
		probes := obs.DefaultProbes(reg)
		table := trace.NewTable()
		table.AddFunc("main", -1)
		run(b, func() exec.Options {
			backend, err := sig.NewAsymmetric(sig.Options{
				Slots: 1 << 20, Threads: threads, FPRate: 0.001,
				Probes: probes.SigProbes(),
			})
			if err != nil {
				b.Fatal(err)
			}
			d, err := detect.New(detect.Options{
				Threads: threads, Backend: backend, Table: table,
				Probes: probes.DetectProbes(),
			})
			if err != nil {
				b.Fatal(err)
			}
			return exec.Options{Threads: threads, Probe: d.Probe(), Probes: probes.EngineProbes()}
		})
	})
}
