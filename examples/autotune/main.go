// Autotune: feed the Eq. 1 thread-load metric into a tuning loop.
//
// The paper's §IV-E use case: "this feature could be directly fed into an
// auto-tuner program in order to automatically tune the correspondent
// parameters". This example profiles a benchmark at several thread counts,
// scores each configuration by hotspot load balance and communication
// volume, and recommends the best one.
package main

import (
	"fmt"
	"log"

	"commprof"
)

func main() {
	const app = "radix"
	type config struct {
		threads int
		balance float64 // worst hotspot balance index (1.0 = even)
		active  float64 // mean active-thread fraction over hotspots
		comm    uint64
		score   float64
	}
	var best *config
	fmt.Printf("auto-tuning %s:\n", app)
	fmt.Printf("%8s %10s %10s %12s %8s\n", "threads", "balance", "active", "comm bytes", "score")
	for _, threads := range []int{4, 8, 16, 32} {
		rep, err := commprof.Profile(commprof.Options{
			Workload: app, Threads: threads, InputSize: "simdev",
		})
		if err != nil {
			log.Fatal(err)
		}
		c := config{threads: threads, comm: rep.CommBytes, balance: 1}
		var activeSum float64
		for _, h := range rep.Hotspots {
			if h.BalanceIndex > c.balance {
				c.balance = h.BalanceIndex
			}
			activeSum += float64(h.ActiveThreads) / float64(threads)
		}
		if len(rep.Hotspots) > 0 {
			c.active = activeSum / float64(len(rep.Hotspots))
		}
		// Score: prefer even load (balance near 1), high utilization, and
		// low communication per thread.
		commPerThread := float64(c.comm) / float64(threads)
		c.score = c.active / (c.balance * (1 + commPerThread/1e5))
		fmt.Printf("%8d %10.2f %9.0f%% %12d %8.3f\n", threads, c.balance, 100*c.active, c.comm, c.score)
		cc := c
		if best == nil || cc.score > best.score {
			best = &cc
		}
	}
	fmt.Printf("\nrecommended thread count for %s: %d\n", app, best.threads)
	fmt.Println("(uneven hotspots — like radix's pairwise reduction, where only half")
	fmt.Println(" the threads supply data — penalize wide configurations)")
}
