// Patterndetect: identify the parallel pattern of each benchmark from its
// communication matrix (the paper's §VI application).
//
// A classifier trained on canonical pattern topologies names the motif of
// each profiled workload: linear algebra, spectral (all-to-all), n-body,
// structured grid, master/worker, pipeline, or barrier.
package main

import (
	"fmt"
	"log"

	"commprof"
)

func main() {
	classifier, err := commprof.NewPatternClassifier(1)
	if err != nil {
		log.Fatal(err)
	}
	apps := []string{"fft", "ocean_cp", "ocean_ncp", "barnes", "water_nsq", "water_spat", "lu_ncb", "radiosity"}
	fmt.Println("parallel-pattern detection, per top hotspot loop:")
	fmt.Println("(classifying hotspots rather than whole programs is the point of")
	fmt.Println(" nested patterns: the global matrix mixes in barrier traffic)")
	for _, app := range apps {
		rep, err := commprof.Profile(commprof.Options{
			Workload: app, Threads: 16, InputSize: "simdev",
		})
		if err != nil {
			log.Fatal(err)
		}
		if len(rep.Hotspots) == 0 {
			continue
		}
		hot := rep.Hotspots[0]
		var hotMatrix commprof.Matrix
		for _, r := range rep.Regions {
			if r.Name == hot.Region {
				hotMatrix = r.Matrix
			}
		}
		class, err := classifier.Classify(hotMatrix)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-11s %-22s -> %-15s (%d bytes)\n", app, hot.Region, class, hot.Bytes)
	}

	// Patterns also differ per hotspot within one program: classify the
	// top hotspot loops of lu_ncb individually.
	rep, err := commprof.Profile(commprof.Options{Workload: "lu_ncb", Threads: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-hotspot classes inside lu_ncb (nested patterns):")
	for i, r := range rep.Regions {
		if r.Kind != "loop" || r.CumulativeBytes == 0 {
			continue
		}
		class, err := classifier.Classify(r.Matrix)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s -> %s\n", r.Name, class)
		_ = i
	}
}
