// Miniparlang: the end-to-end compiler path. A MiniPar source program goes
// through static loop annotation (the paper's Listing 1), probe insertion,
// and SPMD execution with the profiler attached — all via the public API.
//
// The program below is a two-phase pipeline: a block-partitioned producer
// phase, then a consumer phase where every thread reads its left neighbour's
// block, yielding a ring-shaped communication matrix.
package main

import (
	"fmt"
	"log"

	"commprof"
)

const src = `
array Data[512];
array Sum[8];

func main() {
  // Phase 1: every thread produces its block.
  parfor i = 0..512 {
    Data[i] = i * 3;
  }
  barrier;
  // Phase 2: consume the left neighbour's block (ring shift).
  call consume();
  barrier;
  if tid == 0 {
    t = 0;
    for k = 0..8 { t = t + Sum[k]; }
    out t;
  }
}

func consume() {
  blk = 512 / nthreads;
  lo = blk * ((tid + 1) % nthreads);
  s = 0;
  for i = 0..blk {
    s = s + Data[lo + i];
    work 1;
  }
  Sum[tid] = s;
}
`

func main() {
	rep, outs, err := commprof.ProfileMiniPar(src, 8, nil, commprof.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range outs {
		fmt.Printf("program output (T%d): %d\n", o.Thread, o.Value)
	}
	// Expected: sum of Data = 3 * (511*512/2) = 392448.
	fmt.Printf("\n%d accesses, %d deps, %d bytes communicated\n",
		rep.Accesses, rep.Dependencies, rep.CommBytes)

	fmt.Println("\nannotated regions (static analysis output):")
	for _, r := range rep.Regions {
		fmt.Printf("%*s%s %s (cum %dB)\n", 2*r.Depth, "", r.Kind, r.Name, r.CumulativeBytes)
	}

	fmt.Println("\nring communication matrix from the consume phase:")
	fmt.Print(rep.Global.Heatmap())

	class, err := func() (string, error) {
		c, err := commprof.NewPatternClassifier(1)
		if err != nil {
			return "", err
		}
		return c.Classify(rep.Global)
	}()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclassified pattern: %s\n", class)
}
