// Threadmapping: use the communication matrix to place threads onto cores.
//
// The paper's §III-A motivation: "exploiting communication patterns can
// improve performance by mapping threads that communicate a lot to nearby
// cores on the memory hierarchy". This example profiles several benchmarks
// and applies commprof.MapThreads, reporting how much of the communication
// volume becomes socket-local compared with the naive identity mapping.
package main

import (
	"fmt"
	"log"

	"commprof"
)

func main() {
	topo := commprof.Topology{Sockets: 4, CoresPerSocket: 4} // 16 cores
	for _, app := range []string{"ocean_cp", "fft", "water_spat", "lu_ncb", "barnes"} {
		rep, err := commprof.Profile(commprof.Options{
			Workload: app, Threads: 16, InputSize: "simdev",
		})
		if err != nil {
			log.Fatal(err)
		}
		m, err := commprof.MapThreads(rep.Global, topo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s socket-local traffic: naive %5.1f%% -> comm-aware %5.1f%%\n",
			app, 100*m.IdentityShare, 100*m.LocalShare)
	}
	fmt.Println("\n(nearest-neighbour patterns like ocean gain most; uniform all-to-all")
	fmt.Println(" patterns like fft have no locality for any placement to exploit)")
}
