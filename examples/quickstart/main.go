// Quickstart: profile one bundled SPLASH-2-style benchmark and inspect its
// nested communication patterns — the 30-second tour of the library.
package main

import (
	"fmt"
	"log"

	"commprof"
)

func main() {
	rep, err := commprof.Profile(commprof.Options{
		Workload:  "lu_ncb", // blocked LU, the paper's Fig. 6 subject
		Threads:   16,
		InputSize: "simdev",
	})
	if err != nil {
		log.Fatal(err)
	}

	// The headline numbers: how much inter-thread communication the
	// profiler's asymmetric signature memory detected, and what it cost.
	fmt.Printf("%s on %d threads: %d accesses, %d RAW deps, %d bytes communicated\n",
		rep.Workload, rep.Threads, rep.Accesses, rep.Dependencies, rep.CommBytes)
	fmt.Printf("profiler memory: %.1f KB (fixed by signature size, not input size)\n\n",
		float64(rep.SignatureBytes)/1024)

	// The whole-program communication matrix: rows produce, columns consume.
	fmt.Println("global communication matrix:")
	fmt.Print(rep.Global.Heatmap())

	// Communication hotspots: the loops where the traffic happens, ranked.
	fmt.Println("\ntop hotspot loops:")
	for i, h := range rep.Hotspots {
		if i == 3 {
			break
		}
		fmt.Printf("%d. %-18s %6d bytes (%4.1f%% of traffic), %d/%d threads active\n",
			i+1, h.Region, h.Bytes, 100*h.Share, h.ActiveThreads, rep.Threads)
	}

	// Every region's matrix is available; a parent's equals the sum of its
	// children (the paper's nested-pattern summation law).
	fmt.Println("\nregion tree (own / cumulative bytes):")
	for _, r := range rep.Regions {
		fmt.Printf("%*s%s %s: %d / %d\n", 2*r.Depth, "", r.Kind, r.Name, r.OwnBytes, r.CumulativeBytes)
	}
}
