package commprof

import (
	"bytes"
	"testing"
)

func TestProfileSharded(t *testing.T) {
	rep, err := Profile(Options{Workload: "radix", Threads: 8, AnalysisShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dependencies == 0 || rep.CommBytes == 0 {
		t.Fatalf("sharded run detected nothing: %+v", rep)
	}
	if rep.Global.Total() != rep.CommBytes {
		t.Fatalf("global matrix total %d != CommBytes %d", rep.Global.Total(), rep.CommBytes)
	}
	p := rep.Pipeline
	if p == nil {
		t.Fatal("sharded run has no Pipeline report section")
	}
	if p.Shards != 4 || p.QueueCapacity != 8192 || p.Policy != "block" {
		t.Fatalf("pipeline section: %+v", p)
	}
	if p.DroppedReads != 0 {
		t.Fatalf("block policy dropped %d reads", p.DroppedReads)
	}
	var analysed uint64
	for _, n := range p.ShardProcessed {
		analysed += n
	}
	if analysed != rep.Accesses {
		t.Fatalf("shards analysed %d of %d accesses", analysed, rep.Accesses)
	}
}

func TestProfileShardedRejectsBadPolicy(t *testing.T) {
	_, err := Profile(Options{Workload: "radix", Threads: 8, AnalysisShards: 2, ShardPolicy: "panic"})
	if err == nil {
		t.Fatal("unknown shard policy accepted")
	}
}

func TestProfileTraceParallelMatchesSerial(t *testing.T) {
	regions := []Region{
		{Name: "main", Parent: -1},
		{Name: "main#loop", Parent: 0, Loop: true},
	}
	var accesses []Access
	var now uint64
	// 3 writers broadcasting to 3 readers over 60 addresses. The facade uses
	// the asymmetric signature, whose ~0.1% bloom false positives fall on
	// different accesses when the slot budget is partitioned, so sharded and
	// serial agree statistically, not bitwise (bitwise equivalence is pinned
	// with exact backends in internal/pipeline's tests).
	for round := 0; round < 6; round++ {
		w := int32(round % 3)
		for a := 0; a < 60; a++ {
			now++
			accesses = append(accesses, Access{Kind: WriteAccess, Addr: uint64(a) * 64, Size: 8, Thread: w, Region: 1, Time: now})
		}
		for r := int32(0); r < 4; r++ {
			if r == w {
				continue
			}
			for a := 0; a < 60; a++ {
				now++
				accesses = append(accesses, Access{Kind: ReadAccess, Addr: uint64(a) * 64, Size: 8, Thread: r, Region: 1, Time: now})
			}
		}
	}
	serial, err := ProfileTrace(accesses, regions, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := ProfileTraceParallel(accesses, regions, 4, Options{AnalysisShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	within := func(got, want uint64, what string) {
		t.Helper()
		diff := got - want
		if want > got {
			diff = want - got
		}
		if diff*100 > want {
			t.Fatalf("%s: sharded %d vs serial %d differs by more than 1%%", what, got, want)
		}
	}
	within(sharded.Dependencies, serial.Dependencies, "dependencies")
	within(sharded.CommBytes, serial.CommBytes, "comm bytes")
	if sharded.Accesses != serial.Accesses {
		t.Fatalf("sharded saw %d accesses, serial %d", sharded.Accesses, serial.Accesses)
	}
	if sharded.Pipeline == nil || sharded.Pipeline.Shards != 4 {
		t.Fatalf("pipeline section: %+v", sharded.Pipeline)
	}
}

func TestProfileTraceParallelSampling(t *testing.T) {
	accesses := []Access{
		{Kind: WriteAccess, Addr: 0x100, Size: 8, Thread: 0, Region: -1, Time: 1},
		{Kind: ReadAccess, Addr: 0x100, Size: 8, Thread: 1, Region: -1, Time: 2},
		{Kind: ReadAccess, Addr: 0x100, Size: 8, Thread: 1, Region: -1, Time: 3},
	}
	rep, err := ProfileTraceParallel(accesses, nil, 2, Options{AnalysisShards: 2, SampleBurst: 1, SamplePeriod: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SampleFraction != 0.25 {
		t.Fatalf("SampleFraction = %v, want 0.25", rep.SampleFraction)
	}
	if rep.Accesses != 3 {
		t.Fatalf("Accesses = %d: sampling must not change the reported access count", rep.Accesses)
	}
}

func TestProfileTraceParallelValidation(t *testing.T) {
	if _, err := ProfileTraceParallel(nil, nil, 0, Options{}); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := ProfileTraceParallel([]Access{{Thread: 9}}, nil, 2, Options{}); err == nil {
		t.Error("out-of-range thread accepted")
	}
	if _, err := ProfileTraceParallel(nil, nil, 2, Options{AnalysisShards: -3}); err == nil {
		t.Error("negative AnalysisShards accepted")
	}
}

func TestReplaySharded(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Record(Options{Workload: "fft", Threads: 8}, &buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	serial, err := Replay(bytes.NewReader(data), 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Replay(bytes.NewReader(data), 8, Options{AnalysisShards: 4, ShardQueueCapacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Accesses != serial.Accesses {
		t.Fatalf("sharded replay saw %d accesses, serial %d", sharded.Accesses, serial.Accesses)
	}
	if sharded.Dependencies == 0 {
		t.Fatal("sharded replay detected nothing")
	}
	if sharded.Pipeline == nil || sharded.Pipeline.QueueCapacity != 256 {
		t.Fatalf("pipeline section: %+v", sharded.Pipeline)
	}
}

// TestReplayShardedBoundedResidency is the streaming-replay acceptance test:
// replaying a simlarge trace (millions of accesses) through the sharded
// pipeline keeps the in-flight access residency bounded by the configured
// queues and staging buffers — O(shards × (queue + batch)), independent of
// trace length — and reports that peak in the pipeline section.
func TestReplayShardedBoundedResidency(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Record(Options{Workload: "radix", Threads: 8, InputSize: "simlarge"}, &buf); err != nil {
		t.Fatal(err)
	}
	const shards, queueCap, batch = 4, 512, 64
	rep, err := Replay(bytes.NewReader(buf.Bytes()), 8, Options{
		AnalysisShards:     shards,
		ShardQueueCapacity: queueCap,
		ShardBatchSize:     batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pipeline == nil {
		t.Fatal("sharded replay produced no pipeline report")
	}
	if rep.Pipeline.BatchSize != batch {
		t.Fatalf("pipeline batch size %d, want %d", rep.Pipeline.BatchSize, batch)
	}
	if rep.Pipeline.ProducerFlushes == 0 {
		t.Fatal("no producer flushes recorded on a multi-million-access replay")
	}
	peak := rep.Pipeline.PeakResidentAccesses
	bound := shards * (queueCap + batch)
	if peak <= 0 || peak > bound {
		t.Fatalf("peak resident accesses %d outside (0, %d]", peak, bound)
	}
	// The bound is configuration, not trace length: for this trace it is
	// under 1% of the accesses a materialised replay would hold.
	if rep.Accesses < 1_000_000 {
		t.Fatalf("simlarge trace only has %d accesses; the residency ratio below is meaningless", rep.Accesses)
	}
	if ratio := float64(peak) / float64(rep.Accesses); ratio >= 0.01 {
		t.Fatalf("peak resident accesses %d is %.2f%% of the %d-access trace; streaming replay must not scale with trace length",
			peak, 100*ratio, rep.Accesses)
	}
}

func TestTelemetryShardedRun(t *testing.T) {
	tel := NewTelemetry()
	rep, err := Profile(Options{Workload: "radix", Threads: 8, AnalysisShards: 3, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	snap := tel.Progress()
	if len(snap.ShardDepths) != 3 {
		t.Fatalf("progress shard depths: %v", snap.ShardDepths)
	}
	if snap.Accesses != rep.Accesses {
		t.Fatalf("progress accesses %d != report %d", snap.Accesses, rep.Accesses)
	}
	tr := rep.Telemetry
	if tr == nil {
		t.Fatal("no telemetry report")
	}
	if tr.Counters["pipeline_enqueued_total"] != rep.Accesses {
		t.Fatalf("pipeline_enqueued_total = %d, want %d", tr.Counters["pipeline_enqueued_total"], rep.Accesses)
	}
	if _, ok := tr.Gauges["pipeline_shard_2_depth"]; !ok {
		t.Fatal("per-shard depth gauge missing from registry")
	}
	var sawDrain bool
	for _, sp := range tr.Spans {
		if sp.Name == "pipeline-drain" {
			sawDrain = true
		}
	}
	if !sawDrain {
		t.Fatal("pipeline-drain span missing")
	}
}
