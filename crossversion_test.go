package commprof

import (
	"bytes"
	"encoding/json"
	"testing"

	"commprof/internal/trace"
)

// TestReplayCrossVersionAllWorkloads is the codec-compatibility acceptance
// test: every bundled workload's recorded trace, transcoded to each format
// version, replays to a bit-identical report on both the serial and sharded
// analysers. The recording happens once (v1); v2 and v3 are produced by
// re-encoding the decoded stream, so any divergence is the codec's fault,
// not run-to-run noise.
func TestReplayCrossVersionAllWorkloads(t *testing.T) {
	const threads = 8
	for _, name := range Workloads() {
		t.Run(name, func(t *testing.T) {
			var v1 bytes.Buffer
			if _, err := Record(Options{Workload: name, Threads: threads, TraceFormat: 1}, &v1); err != nil {
				t.Fatal(err)
			}
			st, err := trace.Decode(bytes.NewReader(v1.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			var v2, v3 bytes.Buffer
			if err := st.EncodeVersion(&v2, 2, threads); err != nil {
				t.Fatal(err)
			}
			if err := st.EncodeVersion(&v3, 3, threads); err != nil {
				t.Fatal(err)
			}
			if v3.Len() >= v1.Len() {
				t.Errorf("v3 (%d bytes) not smaller than v1 (%d bytes)", v3.Len(), v1.Len())
			}
			encodings := []struct {
				version int
				data    []byte
			}{{1, v1.Bytes()}, {2, v2.Bytes()}, {3, v3.Bytes()}}

			for _, mode := range []struct {
				name string
				opts Options
			}{
				{"serial", Options{}},
				{"sharded", Options{AnalysisShards: 4}},
			} {
				var ref []byte
				for _, enc := range encodings {
					rep, err := Replay(bytes.NewReader(enc.data), threads, mode.opts)
					if err != nil {
						t.Fatalf("%s v%d: %v", mode.name, enc.version, err)
					}
					// Queue depths, flush counts and peak residency vary with
					// worker scheduling; everything analytical must not.
					rep.Pipeline = nil
					got, err := json.Marshal(rep)
					if err != nil {
						t.Fatal(err)
					}
					if ref == nil {
						ref = got
						continue
					}
					if !bytes.Equal(got, ref) {
						t.Errorf("%s: v%d report differs from v1:\nv1: %s\nv%d: %s",
							mode.name, enc.version, ref, enc.version, got)
					}
				}
			}
		})
	}
}
