package commprof

import (
	"strings"
	"testing"
)

func TestProfileBundledWorkload(t *testing.T) {
	rep, err := Profile(Options{Workload: "lu_ncb", Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "lu_ncb" || rep.Threads != 8 {
		t.Fatalf("header wrong: %+v", rep)
	}
	if rep.Accesses == 0 || rep.Dependencies == 0 || rep.CommBytes == 0 {
		t.Fatalf("empty counters: %+v", rep)
	}
	if rep.Global.Total() != rep.CommBytes {
		t.Fatalf("global matrix total %d != CommBytes %d", rep.Global.Total(), rep.CommBytes)
	}
	if len(rep.Regions) == 0 || len(rep.Hotspots) == 0 {
		t.Fatal("missing regions/hotspots")
	}
	sum := rep.Summary()
	for _, want := range []string{"lu_ncb", "daxpy", "hotspots"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestProfileUnknownWorkload(t *testing.T) {
	if _, err := Profile(Options{Workload: "doom"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Profile(Options{Workload: "fft", InputSize: "enormous"}); err == nil {
		t.Fatal("unknown size accepted")
	}
}

func TestProfileWithPhases(t *testing.T) {
	rep, err := Profile(Options{Workload: "radix", Threads: 8, PhaseWindow: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) == 0 {
		t.Fatal("no phases detected with PhaseWindow set")
	}
	var vol uint64
	for _, p := range rep.Phases {
		if p.End <= p.Start {
			t.Fatalf("bad phase interval %+v", p)
		}
		vol += p.Matrix.Total()
	}
	if vol != rep.CommBytes {
		t.Fatalf("phase volumes %d != total %d", vol, rep.CommBytes)
	}
}

func TestProfileParallelMode(t *testing.T) {
	rep, err := Profile(Options{Workload: "fft", Threads: 8, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dependencies == 0 {
		t.Fatal("parallel mode detected nothing")
	}
}

func TestWorkloadsList(t *testing.T) {
	if got := len(Workloads()); got != 14 {
		t.Fatalf("Workloads() = %d entries", got)
	}
}

func TestSignatureMemoryBytesEq2(t *testing.T) {
	// Paper's operating point: ~580 MB.
	mb := float64(SignatureMemoryBytes(10_000_000, 32, 0.001)) / (1 << 20)
	if mb < 500 || mb > 650 {
		t.Fatalf("Eq.2 at paper operating point = %.1f MB", mb)
	}
}

func TestMatrixHelpers(t *testing.T) {
	m := Matrix{N: 2, Bytes: [][]uint64{{0, 10}, {2, 0}}}
	if m.Total() != 12 {
		t.Fatalf("Total = %d", m.Total())
	}
	load := m.ThreadLoad()
	if load[0] != 5 || load[1] != 1 {
		t.Fatalf("ThreadLoad = %v", load)
	}
	if !strings.Contains(m.CSV(), "0,10") {
		t.Error("CSV wrong")
	}
	if m.Heatmap() == "" {
		t.Error("empty heatmap")
	}
	bad := Matrix{N: 2, Bytes: [][]uint64{{1}}}
	if !strings.Contains(bad.Heatmap(), "invalid") {
		t.Error("ragged matrix not reported")
	}
}

func TestProfileTrace(t *testing.T) {
	regions := []Region{
		{Name: "main", Parent: -1},
		{Name: "main#loop", Parent: 0, Loop: true},
	}
	accesses := []Access{
		{Kind: WriteAccess, Addr: 0x100, Size: 8, Thread: 0, Region: 1, Time: 1},
		{Kind: ReadAccess, Addr: 0x100, Size: 8, Thread: 1, Region: 1, Time: 2},
		{Kind: ReadAccess, Addr: 0x100, Size: 8, Thread: 1, Region: 1, Time: 3},
	}
	rep, err := ProfileTrace(accesses, regions, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dependencies != 1 || rep.CommBytes != 8 {
		t.Fatalf("trace report: %+v", rep)
	}
	if rep.Global.Bytes[0][1] != 8 {
		t.Fatalf("matrix: %v", rep.Global.Bytes)
	}
	if len(rep.Hotspots) != 1 || rep.Hotspots[0].Region != "main#loop" {
		t.Fatalf("hotspots: %+v", rep.Hotspots)
	}
}

func TestProfileTraceValidation(t *testing.T) {
	if _, err := ProfileTrace(nil, nil, 0, Options{}); err == nil {
		t.Error("zero threads accepted")
	}
	bad := []Access{{Thread: 5}}
	if _, err := ProfileTrace(bad, nil, 2, Options{}); err == nil {
		t.Error("out-of-range thread accepted")
	}
	badRegion := []Access{{Thread: 0, Region: 3}}
	if _, err := ProfileTrace(badRegion, nil, 2, Options{}); err == nil {
		t.Error("unknown region accepted")
	}
	badTable := []Region{{Name: "x", Parent: 7}}
	func() {
		defer func() { recover() }() // AddLoop panics on dangling parent
		if _, err := ProfileTrace(nil, badTable, 2, Options{}); err == nil {
			t.Error("dangling parent accepted")
		}
	}()
}

func TestRunCustomWorkload(t *testing.T) {
	regions := []Region{
		{Name: "produce", Parent: -1},
		{Name: "produce#loop", Parent: 0, Loop: true},
		{Name: "consume", Parent: -1},
		{Name: "consume#loop", Parent: 2, Loop: true},
	}
	rep, err := Run(4, regions, func(t *Thread) {
		base := uint64(0x1000)
		t.InRegion(1, func() {
			if t.ID() == 0 {
				for i := uint64(0); i < 64; i++ {
					t.Write(base+8*i, 8)
				}
			}
		})
		t.Barrier()
		t.InRegion(3, func() {
			if t.ID() != 0 {
				for i := uint64(0); i < 64; i++ {
					t.Read(base+8*i, 8)
				}
			}
		})
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Broadcast: thread 0 supplies 3 consumers, 64*8 bytes each. The bloom
	// filters may suppress a handful of first-reads (false positives at the
	// configured 0.001 rate), so allow a small undercount but no overcount.
	const want = 3 * 64 * 8
	if rep.CommBytes > want || rep.CommBytes < want*97/100 {
		t.Fatalf("CommBytes = %d, want ≈%d", rep.CommBytes, want)
	}
	for dst := 1; dst < 4; dst++ {
		if got := rep.Global.Bytes[0][dst]; got < 512*95/100 || got > 512 {
			t.Fatalf("matrix row 0: %v", rep.Global.Bytes[0])
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(0, nil, func(*Thread) {}, Options{}); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestPatternClassifier(t *testing.T) {
	c, err := NewPatternClassifier(1)
	if err != nil {
		t.Fatal(err)
	}
	// A pipeline matrix.
	n := 8
	rows := make([][]uint64, n)
	for i := range rows {
		rows[i] = make([]uint64, n)
		if i+1 < n {
			rows[i][i+1] = 1000
		}
	}
	got, err := c.Classify(Matrix{N: n, Bytes: rows})
	if err != nil {
		t.Fatal(err)
	}
	if got != "pipeline" {
		t.Fatalf("Classify = %q, want pipeline", got)
	}
	if _, err := c.Classify(Matrix{N: 2, Bytes: [][]uint64{{1}}}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestProfiledWorkloadClassifications(t *testing.T) {
	// End-to-end: profile real workloads and check the classifier maps them
	// to sensible classes.
	c, err := NewPatternClassifier(1)
	if err != nil {
		t.Fatal(err)
	}
	expect := map[string][]string{
		"ocean_cp":  {"structured-grid", "n-body"},
		"water_nsq": {"spectral", "barrier", "n-body"}, // dense all-to-all family
	}
	for app, classes := range expect {
		rep, err := Profile(Options{Workload: app, Threads: 16})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Classify(rep.Global)
		if err != nil {
			t.Fatal(err)
		}
		ok := false
		for _, want := range classes {
			if got == want {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s classified as %q, want one of %v", app, got, classes)
		}
	}
}

func TestMapThreadsFacade(t *testing.T) {
	rep, err := Profile(Options{Workload: "ocean_cp", Threads: 16})
	if err != nil {
		t.Fatal(err)
	}
	m, err := MapThreads(rep.Global, Topology{Sockets: 4, CoresPerSocket: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.LocalShare < m.IdentityShare {
		t.Fatalf("mapping regressed: %v < %v", m.LocalShare, m.IdentityShare)
	}
	seen := map[int]bool{}
	for _, c := range m.Core {
		if seen[c] {
			t.Fatalf("core reused: %v", m.Core)
		}
		seen[c] = true
	}
	if _, err := MapThreads(rep.Global, Topology{Sockets: 1, CoresPerSocket: 1}); err == nil {
		t.Error("tiny topology accepted for 16 threads")
	}
	if _, err := MapThreads(Matrix{N: 2, Bytes: [][]uint64{{1}}}, Topology{Sockets: 1, CoresPerSocket: 2}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestProfileGranularity(t *testing.T) {
	fine, err := Profile(Options{Workload: "ocean_ncp", Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Profile(Options{Workload: "ocean_ncp", Threads: 8, GranularityBits: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Line granularity changes the unit of detection: several word-level
	// first-reads of one line collapse into a single per-line dependence,
	// while false sharing adds new ones at partition boundaries. The counts
	// must differ but stay the same order of magnitude.
	if coarse.Dependencies == 0 || coarse.Dependencies == fine.Dependencies {
		t.Fatalf("granularity had no effect: %d vs %d", coarse.Dependencies, fine.Dependencies)
	}
	if coarse.Dependencies < fine.Dependencies/10 || coarse.Dependencies > fine.Dependencies*10 {
		t.Fatalf("granularity changed deps implausibly: %d vs %d", coarse.Dependencies, fine.Dependencies)
	}
}

func TestClassifyWithFamily(t *testing.T) {
	c, err := NewPatternClassifier(1)
	if err != nil {
		t.Fatal(err)
	}
	n := 8
	rows := make([][]uint64, n)
	for i := range rows {
		rows[i] = make([]uint64, n)
		if i+1 < n {
			rows[i][i+1] = 1000
		}
	}
	class, family, err := c.ClassifyWithFamily(Matrix{N: n, Bytes: rows})
	if err != nil {
		t.Fatal(err)
	}
	if class != "pipeline" || family != "architectural" {
		t.Fatalf("got (%s, %s), want (pipeline, architectural)", class, family)
	}
	if _, _, err := c.ClassifyWithFamily(Matrix{N: 2, Bytes: [][]uint64{{1}}}); err == nil {
		t.Error("ragged matrix accepted")
	}
}
