module commprof

go 1.22
