package commprof

import (
	"fmt"

	"commprof/internal/comm"
	"commprof/internal/metrics"
	"commprof/internal/obs"
	"commprof/internal/trace"
)

// phaseThreshold is the cosine-similarity threshold for merging adjacent
// windows into one phase (§V-A4); the facade's fixed operating point.
const phaseThreshold = 0.7

const (
	// phaseRecentKeep bounds the recent-window ring /progress shows.
	phaseRecentKeep = 8
	// phaseMaxLoops bounds the per-loop live classifications /progress and
	// the report timeline's loop digest carry.
	phaseMaxLoops = 5
)

// phaseState bundles one run's phase-observability wiring: the trained
// pattern classifier, the loop-region predicate over the run's region table,
// and (when the run has telemetry) the live classification multiplexer that
// consumes closed windows as they stream out. Both analysers share it — the
// serial PhaseSegmenter and the sharded pipeline feed the same window-closing
// contract, so the facade code differs only in who produces the windows.
type phaseState struct {
	window uint64
	table  *trace.Table
	cls    *PatternClassifier
	tel    *Telemetry
	live   *metrics.LivePhases // nil without telemetry
}

// newPhaseState builds the phase wiring for one run, or nil when
// Options.PhaseWindow is unset.
func newPhaseState(opts Options, table *trace.Table, tel *Telemetry, probes *obs.Probes) (*phaseState, error) {
	if opts.PhaseWindow == 0 {
		return nil, nil
	}
	cls, err := NewPatternClassifier(opts.Seed)
	if err != nil {
		return nil, err
	}
	ps := &phaseState{window: opts.PhaseWindow, table: table, cls: cls, tel: tel}
	if tel != nil {
		ps.live = metrics.NewLivePhases(cls.knn, ps.isLoop, phaseRecentKeep, probes.PhaseProbes())
	}
	return ps, nil
}

// isLoop reports whether a region id names an annotated loop.
func (p *phaseState) isLoop(id int32) bool {
	if id < 0 || int(id) >= p.table.Len() {
		return false
	}
	return p.table.MustRegion(id).Kind == trace.LoopRegion
}

// regionName resolves a region id for the report and /progress surfaces,
// including the source position for regions from instrumented real programs.
func (p *phaseState) regionName(id int32) string {
	r, err := p.table.Region(id)
	if err != nil {
		return fmt.Sprintf("region-%d", id)
	}
	return r.Label()
}

// onClose returns the window-close callback that feeds the live layer, with a
// tracer span and a timeline instant per closed window; nil when the run has
// no telemetry (nothing consumes live windows, and the final report
// recomputes from the complete merged set anyway).
func (p *phaseState) onClose() func(w *comm.Window, end uint64) {
	if p == nil || p.live == nil {
		return nil
	}
	var track *obs.Track
	if tl := p.tel.Timeline(); tl != nil {
		track = tl.Track("engine")
	}
	return func(w *comm.Window, end uint64) {
		sp := p.tel.span("phase-window")
		p.live.ObserveWindow(w, end)
		sp.End()
		track.Instant("window-close")
	}
}

// wire binds the live phase surfaces (gauges, /progress fields, the periodic
// window-advancing sampler) to the run. advance drives window closing — the
// serial segmenter's Advance or the pipeline's AdvancePhases. Call after
// wireRun / wireRunSharded so the /progress snapshot wraps the run's base
// snapshot. No-op without telemetry.
func (p *phaseState) wire(advance func() int) {
	if p == nil || p.live == nil {
		return
	}
	p.tel.wirePhases(p.live, p.regionName, advance)
}

// attach renders the complete merged window set into the report: the §V-A4
// phase list (bit-identical to the serial segmenter's Finish, by the window
// merge law) and the classified pattern timeline.
func (p *phaseState) attach(rep *Report, ws *comm.WindowSet) {
	if p == nil {
		return
	}
	for _, ph := range metrics.SegmentWindows(ws.Sorted(), p.window, phaseThreshold) {
		rep.Phases = append(rep.Phases, PhaseReport{
			Start: ph.Start, End: ph.End, Matrix: fromInternal(ph.Matrix),
		})
	}
	tl := metrics.BuildTimeline(ws, p.cls.knn, p.isLoop, phaseMaxLoops)
	out := &PhaseTimelineReport{WindowSize: tl.WindowSize}
	for _, w := range tl.Windows {
		out.Windows = append(out.Windows, PhaseWindowReport{
			Start: w.Start, End: w.End,
			Class: w.Class.String(), Confidence: w.Confidence, Bytes: w.Bytes,
		})
	}
	for _, tr := range tl.Transitions {
		out.Transitions = append(out.Transitions, PhaseTransitionReport{
			At: tr.At, From: tr.From.String(), To: tr.To.String(),
		})
	}
	for _, l := range tl.Loops {
		out.Loops = append(out.Loops, LoopTimelineReport{
			Region: p.regionName(l.Region), Class: l.Class.String(),
			Bytes: l.Bytes, Windows: l.Windows,
		})
	}
	rep.PhaseTimeline = out
}
