package commprof

import (
	"fmt"
	"strings"

	"commprof/internal/accuracy"
	"commprof/internal/comm"
	"commprof/internal/patterns"
	"commprof/internal/redundancy"
)

// Matrix is the public communication matrix: Bytes[src][dst] holds the bytes
// thread dst read that thread src last wrote.
type Matrix struct {
	N     int
	Bytes [][]uint64
}

func fromInternal(m *comm.Matrix) Matrix {
	return Matrix{N: m.N(), Bytes: m.Rows()}
}

func (m Matrix) toInternal() (*comm.Matrix, error) {
	if len(m.Bytes) != m.N {
		return nil, fmt.Errorf("commprof: matrix declares N=%d but has %d rows", m.N, len(m.Bytes))
	}
	for i, row := range m.Bytes {
		if len(row) != m.N {
			return nil, fmt.Errorf("commprof: matrix row %d has %d columns, want %d", i, len(row), m.N)
		}
	}
	return comm.FromRows(m.Bytes)
}

// Total returns the summed communication volume in bytes.
func (m Matrix) Total() uint64 {
	var t uint64
	for _, row := range m.Bytes {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// ThreadLoad computes the paper's Eq. 1 per-thread load vector:
// row sum / thread count.
func (m Matrix) ThreadLoad() []float64 {
	out := make([]float64, m.N)
	for s, row := range m.Bytes {
		var sum uint64
		for _, v := range row {
			sum += v
		}
		out[s] = float64(sum) / float64(m.N)
	}
	return out
}

// Heatmap renders the matrix as an ASCII intensity map.
func (m Matrix) Heatmap() string {
	im, err := m.toInternal()
	if err != nil {
		return fmt.Sprintf("<invalid matrix: %v>", err)
	}
	return im.Heatmap()
}

// CSV renders the matrix as comma-separated rows.
func (m Matrix) CSV() string {
	var b strings.Builder
	for _, row := range m.Bytes {
		for j, v := range row {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RegionReport is one node of the nested communication structure, in
// depth-first order.
type RegionReport struct {
	// Name labels the region. Synthetic workloads use bare kernel names
	// ("daxpy#1"); regions from instrumented real sources append the source
	// position, e.g. "worker pool.go:42".
	Name string
	// File/Line locate the region in real source (instrumented programs
	// only; empty for synthetic workloads).
	File            string `json:",omitempty"`
	Line            int    `json:",omitempty"`
	Kind            string // "func" or "loop"
	Depth           int
	Accesses        uint64
	OwnBytes        uint64 // traffic attributed directly to the region
	CumulativeBytes uint64 // own + all children (the paper's summation law)
	Matrix          Matrix // cumulative matrix
}

// HotspotReport ranks a loop by its share of total communication and carries
// its Eq. 1 load vector.
type HotspotReport struct {
	Region        string
	Bytes         uint64
	Share         float64
	Load          []float64
	ActiveThreads int
	BalanceIndex  float64
}

// PipelineReport describes the sharded analysis engine of a run profiled
// with Options.AnalysisShards > 0.
type PipelineReport struct {
	// Shards is the analysis shard count K.
	Shards int
	// QueueCapacity is each shard's bounded queue size in accesses.
	QueueCapacity int
	// BatchSize is the producer staging batch / worker drain limit in
	// accesses.
	BatchSize int
	// Policy is the overload policy the run used ("block", "degrade" or
	// "auto").
	Policy string
	// PolicyTransitions counts the auto policy's mode switches in both
	// directions (block→degrade on a stall-rate spike, degrade→block once
	// the queues drained); always 0 under the static policies.
	PolicyTransitions uint64
	// DroppedReads counts reads the degrade policy discarded while a shard
	// queue was saturated; always 0 under the block policy.
	DroppedReads uint64
	// ProducerFlushes counts staging-buffer flushes across all producers;
	// the total enqueued access count over this is the realised enqueue
	// amortization factor.
	ProducerFlushes uint64
	// PeakResidentAccesses is the peak number of access records the analyser
	// held in flight (shard queue peaks plus producer staging peaks) — the
	// O(queue depth) bound streaming replay keeps resident instead of the
	// whole trace.
	PeakResidentAccesses int
	// PeakDepths is each shard's maximum observed queue depth — how close
	// the run came to its capacity bound.
	PeakDepths []int
	// ShardProcessed is each shard's analysed access count: the address-hash
	// load balance across shards.
	ShardProcessed []uint64
}

// RedundancyReport describes the redundancy-filtering fast path of a run
// profiled with Options.RedundancyCacheBits > 0. HitRate is the headline
// number: the fraction of accesses that skipped the signature backend
// entirely.
type RedundancyReport struct {
	// CacheBits is log2 of each consumer cache's entry count.
	CacheBits uint
	// Hits counts accesses skipped as provably redundant.
	Hits uint64
	// Misses counts accesses forwarded to the signature backend.
	Misses uint64
	// Evictions counts direct-mapped index collisions that displaced a
	// resident granule — the signal that CacheBits is undersized for the
	// working set.
	Evictions uint64
	// HitRate is Hits / (Hits + Misses).
	HitRate float64
}

// CoalescingReport summarises the static access-coalescing pass of a MiniPar
// run (internal/passes.Coalesce): how many probes the compiler marked, and
// how many dynamic accesses consequently never reached the analysis backend.
type CoalescingReport struct {
	// StaticElided counts probe sites marked redundant on every execution.
	StaticElided int
	// StaticOnce counts probe sites marked once-per-loop-entry: they fire on
	// the first iteration and are elided on the rest.
	StaticOnce int
	// Elided counts dynamic accesses that executed through the elided path
	// (clock and counters ticked, no probe fired).
	Elided uint64
	// Emitted counts dynamic accesses whose probes reached the analyser.
	Emitted uint64
	// Regions lists per-region elided counts, largest first.
	Regions []CoalescingRegion
}

// CoalescingRegion is one region's share of the elided accesses.
type CoalescingRegion struct {
	Region string
	Elided uint64
}

// ElisionRate is Elided / (Elided + Emitted), the emitted-access reduction.
func (c *CoalescingReport) ElisionRate() float64 {
	if total := c.Elided + c.Emitted; total > 0 {
		return float64(c.Elided) / float64(total)
	}
	return 0
}

func redundancyReport(st redundancy.Stats) *RedundancyReport {
	return &RedundancyReport{
		CacheBits: st.Bits,
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
		HitRate:   st.HitRate(),
	}
}

// FillSample is one point of the signature-saturation trajectory: the mean
// bloom fill ratio of the production read signature at a moment of the run.
type FillSample struct {
	// ElapsedSeconds is wall time since the run was wired.
	ElapsedSeconds float64
	// Ratio is the sampled mean bloom fill ratio at that moment.
	Ratio float64
}

// AccuracyReport describes the online signature-accuracy monitor of a run
// profiled with Options.AccuracyTargetFPR > 0: the live counterpart of the
// paper's offline §V-A3 false-positive sweep. EstimatedFPR is the headline
// number; at AccuracySampleBits 0 it equals the offline exact-diff FPR for
// the same signature configuration.
type AccuracyReport struct {
	// SampleBits / SampleFraction describe the shadowed slice of the granule
	// address space (1/2^SampleBits of all granules, whole granules only).
	SampleBits     uint
	SampleFraction float64
	// TargetFPR is the acceptable false-positive rate the run was asked to
	// watch for.
	TargetFPR float64
	// SampledAccesses counts accesses that reached the exact shadow;
	// SampledGranules the distinct granules it tracked.
	SampledAccesses uint64
	SampledGranules uint64
	// SigEvents counts production communicating-access verdicts inside the
	// slice; Confirmed/FalsePositives split them by the shadow's judgement,
	// and MissedEvents counts exact dependencies the signature never
	// reported (false negatives).
	SigEvents      uint64
	Confirmed      uint64
	FalsePositives uint64
	MissedEvents   uint64
	// EstimatedFPR is FalsePositives / SigEvents, bracketed by the 95%
	// Wilson interval [FPRLow, FPRHigh].
	EstimatedFPR    float64
	FPRLow, FPRHigh float64
	// DesignEffect quantifies granule-level clustering of false positives:
	// SigEvents divided by the cluster-robust effective trial count. 1 means
	// verdicts behave independently; larger values mean false positives
	// arrive in per-granule bursts and the plain Wilson interval is too
	// narrow. [FPRLowClustered, FPRHighClustered] is the Wilson interval at
	// the effective trial count — the honest bracket under clustering.
	DesignEffect                      float64
	FPRLowClustered, FPRHighClustered float64
	// EstimatedWorkingSet extrapolates the run's distinct-granule count from
	// the sampled slice.
	EstimatedWorkingSet uint64
	// ShadowBytes is the memory the exact shadow held.
	ShadowBytes uint64
	// CurrentSlots/RecommendedSlots/RecommendedBytes are the Eq. 2 advisor:
	// the signature size that would bring the measured FPR down to
	// TargetFPR, priced with the paper's memory model.
	CurrentSlots     uint64
	RecommendedSlots uint64
	RecommendedBytes uint64
	// FillRatio is the production read signature's final mean bloom fill;
	// FillTrajectory its sampled course over the run (present when the run
	// had Options.Telemetry, which owns the periodic sampler).
	FillRatio      float64
	FillTrajectory []FillSample `json:",omitempty"`
	// Alarm carries the warn-once saturation message, "" when none fired.
	Alarm string `json:",omitempty"`
}

func accuracyReport(est accuracy.Estimate, rec accuracy.Recommendation, shadowBytes uint64, fill float64, traj []FillSample, alarm string) *AccuracyReport {
	return &AccuracyReport{
		SampleBits:          est.SampleBits,
		SampleFraction:      est.SampleFraction,
		TargetFPR:           est.TargetFPR,
		SampledAccesses:     est.SampledAccesses,
		SampledGranules:     est.SampledGranules,
		SigEvents:           est.SigEvents,
		Confirmed:           est.Confirmed,
		FalsePositives:      est.FalsePositives,
		MissedEvents:        est.MissedEvents,
		EstimatedFPR:        est.EstimatedFPR,
		FPRLow:              est.FPRLow,
		FPRHigh:             est.FPRHigh,
		DesignEffect:        est.DesignEffect,
		FPRLowClustered:     est.FPRLowClustered,
		FPRHighClustered:    est.FPRHighClustered,
		EstimatedWorkingSet: est.EstimatedWorkingSet,
		ShadowBytes:         shadowBytes,
		CurrentSlots:        rec.CurrentSlots,
		RecommendedSlots:    rec.RecommendedSlots,
		RecommendedBytes:    rec.RecommendedBytes,
		FillRatio:           fill,
		FillTrajectory:      traj,
		Alarm:               alarm,
	}
}

// OverheadReport decomposes a run's wall time into the profiler's own
// analysis stages — where the slowdown the paper's Fig. 4 measures actually
// goes. Decode, Queue, Window and Merge come from exact per-batch timings;
// BatchService time (the shard workers' detector time) is split into
// Signature, Redundancy and Shadow using a 1-in-256 sampled sub-timing, with
// the sampled estimates clamped so the split always sums to the measured
// batch-service total. Present on replay and sharded runs, where the
// instrumented stage boundaries exist; nil on purely synthetic serial runs.
type OverheadReport struct {
	// EngineWallNanos is wall time from run wiring to report build. With K
	// parallel shard workers the attributed stage time can legitimately
	// exceed it (the buckets sum CPU time across workers).
	EngineWallNanos uint64
	// DecodeNanos is trace decode time (Decoder.NextBatch).
	DecodeNanos uint64
	// QueueNanos is producer-side time: staging, routing and enqueueing into
	// the shard queues, including time blocked on a full queue.
	QueueNanos uint64
	// SignatureNanos is detector time not attributed to the redundancy cache
	// or accuracy shadow: signature queries/updates, matrices, region
	// attribution.
	SignatureNanos uint64
	// RedundancyNanos / ShadowNanos are the sampled shares of detector time
	// spent in the redundancy fast path and the accuracy monitor's exact
	// shadow.
	RedundancyNanos uint64
	ShadowNanos     uint64
	// WindowNanos is phase-window flush and advance time.
	WindowNanos uint64
	// MergeNanos is end-of-run shard merge and tree-build time.
	MergeNanos uint64
	// AttributedNanos sums the exactly-measured buckets (decode + queue +
	// batch service + window + merge); AttributedShare divides it by
	// EngineWallNanos.
	AttributedNanos uint64
	AttributedShare float64
}

// PhaseReport is one detected communication phase (§V-A4).
type PhaseReport struct {
	Start, End uint64 // logical-time interval
	Matrix     Matrix
}

// PhaseWindowReport is one classified window of the phase timeline: the
// fixed-length logical-time bucket, its §VI pattern class, the classifier's
// confidence and the communicated volume.
type PhaseWindowReport struct {
	Start, End uint64
	Class      string
	Confidence float64
	Bytes      uint64
}

// PhaseTransitionReport marks a whole-program pattern change between two
// consecutive windows; At is the start of the window that introduced the new
// class.
type PhaseTransitionReport struct {
	At       uint64
	From, To string
}

// LoopTimelineReport aggregates one loop region's windowed communication:
// its summed-matrix pattern class, total volume and the number of windows in
// which it communicated.
type LoopTimelineReport struct {
	Region  string
	Class   string
	Bytes   uint64
	Windows int
}

// PhaseTimelineReport is the classified phase timeline of a run profiled
// with Options.PhaseWindow: every window of the run in time order with its
// live pattern classification, the whole-program pattern transitions, and a
// per-hot-loop digest. It is a deterministic function of the merged window
// set, so the serial and sharded analysers produce identical timelines.
type PhaseTimelineReport struct {
	WindowSize  uint64
	Windows     []PhaseWindowReport
	Transitions []PhaseTransitionReport `json:",omitempty"`
	Loops       []LoopTimelineReport    `json:",omitempty"`
}

// Report is the result of one profiling run.
type Report struct {
	Workload       string
	Threads        int
	Accesses       uint64
	Dependencies   uint64 // inter-thread RAW dependencies detected
	CommBytes      uint64
	SignatureBytes uint64 // profiler analysis memory actually held
	// SampleFraction is the analysed fraction of reads (1.0 without
	// sampling); detected volumes scale by roughly this factor.
	SampleFraction float64
	Global         Matrix
	Regions        []RegionReport
	Hotspots       []HotspotReport
	Phases         []PhaseReport
	// PhaseTimeline is the classified phase timeline. Nil unless the run used
	// Options.PhaseWindow.
	PhaseTimeline *PhaseTimelineReport `json:",omitempty"`
	// Pipeline describes the sharded analysis engine. Nil unless the run
	// used Options.AnalysisShards.
	Pipeline *PipelineReport `json:",omitempty"`
	// Redundancy describes the redundancy-filtering fast path. Nil unless
	// the run used Options.RedundancyCacheBits (and, for the serial
	// analyser, ran under the deterministic scheduler).
	Redundancy *RedundancyReport `json:",omitempty"`
	// Coalescing describes the static access-coalescing pass. Nil except on
	// MiniPar runs with the pass enabled (the default; see
	// Options.DisableCoalesce).
	Coalescing *CoalescingReport `json:",omitempty"`
	// Accuracy is the online signature-accuracy estimate. Nil unless the run
	// used Options.AccuracyTargetFPR (and, for the serial analyser, ran
	// under the deterministic scheduler).
	Accuracy *AccuracyReport `json:",omitempty"`
	// Telemetry is the self-observability snapshot of the run (metric
	// counters/gauges/histograms plus pipeline-phase spans). Nil unless
	// Options.Telemetry was set.
	Telemetry *TelemetryReport `json:",omitempty"`
	// Overhead decomposes the run's wall time into the profiler's own
	// analysis stages. Nil unless Options.Telemetry was set and the run went
	// through an instrumented stage boundary (replay or the sharded
	// pipeline).
	Overhead *OverheadReport `json:",omitempty"`
}

// Summary renders a human-readable overview.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload %s: %d threads, %d accesses, %d inter-thread RAW deps, %d bytes communicated\n",
		r.Workload, r.Threads, r.Accesses, r.Dependencies, r.CommBytes)
	fmt.Fprintf(&b, "profiler memory: %.1f KB\n", float64(r.SignatureBytes)/1024)
	if p := r.Pipeline; p != nil {
		fmt.Fprintf(&b, "sharded analysis: %d shards, queue capacity %d, batch %d, policy %s, dropped reads %d\n",
			p.Shards, p.QueueCapacity, p.BatchSize, p.Policy, p.DroppedReads)
		if p.PolicyTransitions > 0 {
			fmt.Fprintf(&b, "auto policy transitions: %d\n", p.PolicyTransitions)
		}
		fmt.Fprintf(&b, "peak resident accesses: %d (%d producer flushes)\n",
			p.PeakResidentAccesses, p.ProducerFlushes)
	}
	if rd := r.Redundancy; rd != nil {
		fmt.Fprintf(&b, "redundancy fast path: 2^%d entries, %.1f%% of accesses skipped (%d hits, %d misses, %d evictions)\n",
			rd.CacheBits, 100*rd.HitRate, rd.Hits, rd.Misses, rd.Evictions)
	}
	if c := r.Coalescing; c != nil {
		fmt.Fprintf(&b, "static coalescing: %d+%d probes marked (always+once), %.1f%% of accesses elided (%d of %d)\n",
			c.StaticElided, c.StaticOnce, 100*c.ElisionRate(), c.Elided, c.Elided+c.Emitted)
		for _, reg := range c.Regions {
			fmt.Fprintf(&b, "  %s: %d elided\n", reg.Region, reg.Elided)
		}
	}
	if o := r.Overhead; o != nil {
		fmt.Fprintf(&b, "overhead attribution: %.1f%% of %.1fms wall attributed — decode %.1fms, queue %.1fms, signature %.1fms, redundancy %.1fms, shadow %.1fms, window %.1fms, merge %.1fms\n",
			100*o.AttributedShare, float64(o.EngineWallNanos)/1e6,
			float64(o.DecodeNanos)/1e6, float64(o.QueueNanos)/1e6,
			float64(o.SignatureNanos)/1e6, float64(o.RedundancyNanos)/1e6,
			float64(o.ShadowNanos)/1e6, float64(o.WindowNanos)/1e6,
			float64(o.MergeNanos)/1e6)
	}
	if a := r.Accuracy; a != nil {
		fmt.Fprintf(&b, "accuracy monitor: 1/%d of granules shadowed (%d accesses, %d sig events), estimated FPR %.2f%% (95%% CI %.2f–%.2f%%), target %.2f%%, recommended slots %d (%.1f KB)\n",
			uint64(1)<<a.SampleBits, a.SampledAccesses, a.SigEvents,
			100*a.EstimatedFPR, 100*a.FPRLow, 100*a.FPRHigh, 100*a.TargetFPR,
			a.RecommendedSlots, float64(a.RecommendedBytes)/1024)
		if a.DesignEffect > 1 {
			fmt.Fprintf(&b, "accuracy clustering: design effect %.1f, cluster-robust 95%% CI %.2f–%.2f%%\n",
				a.DesignEffect, 100*a.FPRLowClustered, 100*a.FPRHighClustered)
		}
		if a.Alarm != "" {
			fmt.Fprintf(&b, "ACCURACY ALARM: %s\n", a.Alarm)
		}
	}
	b.WriteByte('\n')
	b.WriteString("region tree:\n")
	for _, reg := range r.Regions {
		fmt.Fprintf(&b, "%s%s %s: own=%dB cum=%dB accesses=%d\n",
			strings.Repeat("  ", reg.Depth), reg.Kind, reg.Name, reg.OwnBytes, reg.CumulativeBytes, reg.Accesses)
	}
	b.WriteString("\nhotspots:\n")
	for i, h := range r.Hotspots {
		fmt.Fprintf(&b, "%d. %s: %d bytes (%.1f%%), %d/%d threads active, balance %.2f\n",
			i+1, h.Region, h.Bytes, 100*h.Share, h.ActiveThreads, r.Threads, h.BalanceIndex)
	}
	if len(r.Phases) > 0 {
		b.WriteString("\nphases:\n")
		for i, p := range r.Phases {
			fmt.Fprintf(&b, "%d. t=[%d,%d) volume=%dB\n", i+1, p.Start, p.End, p.Matrix.Total())
		}
	}
	if tl := r.PhaseTimeline; tl != nil {
		fmt.Fprintf(&b, "\npattern timeline: %d windows of %d, %d transitions\n",
			len(tl.Windows), tl.WindowSize, len(tl.Transitions))
		for _, tr := range tl.Transitions {
			fmt.Fprintf(&b, "  t=%d: %s -> %s\n", tr.At, tr.From, tr.To)
		}
		for _, l := range tl.Loops {
			fmt.Fprintf(&b, "  loop %s: %s, %dB over %d windows\n", l.Region, l.Class, l.Bytes, l.Windows)
		}
	}
	return b.String()
}

// PatternClassifier assigns parallel-pattern classes to matrices. Build one
// with NewPatternClassifier; it is safe for concurrent use after creation.
type PatternClassifier struct {
	knn *patterns.KNN
}

// NewPatternClassifier trains the default kNN classifier on the canonical
// pattern corpus (§VI). seed controls corpus generation.
func NewPatternClassifier(seed int64) (*PatternClassifier, error) {
	rng := newSeededRand(seed)
	train := patterns.Corpus(60, []int{8, 16, 32}, 0, rng)
	knn, err := patterns.NewKNN(5, train)
	if err != nil {
		return nil, err
	}
	return &PatternClassifier{knn: knn}, nil
}

// Classify names the parallel pattern of a communication matrix: one of
// linear-algebra, spectral, n-body, structured-grid, master-worker, pipeline
// or barrier.
func (c *PatternClassifier) Classify(m Matrix) (string, error) {
	im, err := m.toInternal()
	if err != nil {
		return "", err
	}
	return patterns.ClassifyMatrix(c.knn, im).String(), nil
}

// ClassifyWithFamily additionally names the paper's §VI top-level family of
// the detected pattern: computational, architectural or synchronization.
func (c *PatternClassifier) ClassifyWithFamily(m Matrix) (class, family string, err error) {
	im, err := m.toInternal()
	if err != nil {
		return "", "", err
	}
	cl := patterns.ClassifyMatrix(c.knn, im)
	return cl.String(), patterns.FamilyOf(cl).String(), nil
}
