package commprof

import (
	"bytes"
	"strings"
	"testing"
)

// checkTimeline asserts the structural invariants every phase-enabled run
// must satisfy: a timeline present, windows in increasing start order with
// the configured length and classified with in-range confidence, windowed
// volume accounting for every detected byte, and a non-empty §V-A4 phase
// list covering the same span.
func checkTimeline(t *testing.T, rep *Report, window uint64) {
	t.Helper()
	tl := rep.PhaseTimeline
	if tl == nil {
		t.Fatal("no PhaseTimeline on a PhaseWindow run")
	}
	if tl.WindowSize != window {
		t.Fatalf("timeline window size %d, want %d", tl.WindowSize, window)
	}
	if len(tl.Windows) == 0 {
		t.Fatal("timeline has no windows")
	}
	var windowed uint64
	var prev uint64
	for i, w := range tl.Windows {
		if w.End != w.Start+window {
			t.Fatalf("window %d spans [%d,%d), want length %d", i, w.Start, w.End, window)
		}
		if i > 0 && w.Start <= prev {
			t.Fatalf("window %d start %d not after %d", i, w.Start, prev)
		}
		prev = w.Start
		if w.Class == "" || w.Class == "unknown" {
			t.Fatalf("window %d unclassified: %q", i, w.Class)
		}
		if w.Confidence <= 0 || w.Confidence > 1 {
			t.Fatalf("window %d confidence %v", i, w.Confidence)
		}
		windowed += w.Bytes
	}
	if windowed != rep.CommBytes {
		t.Fatalf("windowed bytes %d != detected bytes %d", windowed, rep.CommBytes)
	}
	if len(rep.Phases) == 0 {
		t.Fatal("no §V-A4 phases on a PhaseWindow run")
	}
	var phased uint64
	for _, p := range rep.Phases {
		phased += p.Matrix.Total()
	}
	if phased != rep.CommBytes {
		t.Fatalf("phase bytes %d != detected bytes %d", phased, rep.CommBytes)
	}
}

// TestProfilePhaseWindowComposesWithShards is the regression test for the
// former hard error: -phases and -shards now compose, and the sharded run
// carries the full phase sections.
func TestProfilePhaseWindowComposesWithShards(t *testing.T) {
	rep, err := Profile(Options{Workload: "radix", Threads: 8, AnalysisShards: 2, PhaseWindow: 5000})
	if err != nil {
		t.Fatal(err)
	}
	checkTimeline(t, rep, 5000)
	if !strings.Contains(rep.Summary(), "pattern timeline") {
		t.Fatal("Summary does not render the pattern timeline")
	}
}

// TestReplayPhaseWindowShardedMatchesStructure pins Replay: a recorded trace
// replayed through the sharded pipeline with PhaseWindow yields the phase
// sections, live surfaces included, and a second replay is bit-identical
// (single-producer replay is deterministic per shard).
func TestReplayPhaseWindowSharded(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Record(Options{Workload: "fft", Threads: 8}, &buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	const window = 3000

	run := func() *Report {
		tel := NewTelemetry()
		defer tel.Close()
		rep, err := Replay(bytes.NewReader(raw), 8, Options{
			AnalysisShards: 2, PhaseWindow: window, Telemetry: tel,
		})
		if err != nil {
			t.Fatal(err)
		}
		// The live surfaces must agree with the final timeline.
		snap := tel.Progress()
		if snap.PhaseWindowsClosed != uint64(len(rep.PhaseTimeline.Windows)) {
			t.Fatalf("progress reports %d windows closed, timeline holds %d",
				snap.PhaseWindowsClosed, len(rep.PhaseTimeline.Windows))
		}
		if snap.CurrentPattern == "" {
			t.Fatal("no live current pattern after a phase run")
		}
		if last := rep.PhaseTimeline.Windows[len(rep.PhaseTimeline.Windows)-1]; snap.CurrentPattern != last.Class {
			t.Fatalf("live pattern %q, final window class %q", snap.CurrentPattern, last.Class)
		}
		return rep
	}
	a, b := run(), run()
	checkTimeline(t, a, window)
	if len(a.PhaseTimeline.Windows) != len(b.PhaseTimeline.Windows) {
		t.Fatal("replay timeline not reproducible")
	}
	for i := range a.PhaseTimeline.Windows {
		if a.PhaseTimeline.Windows[i] != b.PhaseTimeline.Windows[i] {
			t.Fatalf("replay window %d differs between runs", i)
		}
	}
}

// TestReplayPhaseWindowSerialSharded runs the same trace through the serial
// and sharded replay analysers and checks both produce their phase sections;
// bit-identity of the window layer under exact signatures is pinned at the
// pipeline level (TestPhaseIdentityAllWorkloads).
func TestReplayPhaseWindowSerial(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Record(Options{Workload: "lu_cb", Threads: 8}, &buf); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(bytes.NewReader(buf.Bytes()), 8, Options{PhaseWindow: 2500})
	if err != nil {
		t.Fatal(err)
	}
	checkTimeline(t, rep, 2500)
}

// TestProfileTraceParallelPhaseWindow pins the third entry point the old
// error could reach: a user trace analysed by the sharded pipeline with
// windowed phases, loop digest included.
func TestProfileTraceParallelPhaseWindow(t *testing.T) {
	regions := []Region{
		{Name: "main", Parent: -1},
		{Name: "main#loop", Parent: 0, Loop: true},
	}
	var accesses []Access
	var now uint64
	// A pipeline-shaped exchange inside the loop region: thread i writes a
	// block, thread i+1 reads it, repeatedly.
	for round := 0; round < 200; round++ {
		for tid := int32(0); tid < 4; tid++ {
			addr := uint64(tid) * 64
			now++
			accesses = append(accesses, Access{Kind: WriteAccess, Addr: addr, Size: 8, Thread: tid, Region: 1, Time: now})
			now++
			accesses = append(accesses, Access{Kind: ReadAccess, Addr: addr, Size: 8, Thread: (tid + 1) % 4, Region: 1, Time: now})
		}
	}
	rep, err := ProfileTraceParallel(accesses, regions, 4, Options{AnalysisShards: 2, PhaseWindow: 100})
	if err != nil {
		t.Fatal(err)
	}
	checkTimeline(t, rep, 100)
	if len(rep.PhaseTimeline.Loops) == 0 {
		t.Fatal("no loop digest despite all communication inside a loop region")
	}
	if rep.PhaseTimeline.Loops[0].Region != "main#loop" {
		t.Fatalf("loop digest names %q, want main#loop", rep.PhaseTimeline.Loops[0].Region)
	}

	// The serial trace analyser gets the same sections.
	srep, err := ProfileTrace(accesses, regions, 4, Options{PhaseWindow: 100})
	if err != nil {
		t.Fatal(err)
	}
	checkTimeline(t, srep, 100)
}
