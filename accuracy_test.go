package commprof

import (
	"bytes"
	"strings"
	"testing"

	"commprof/internal/detect"
	"commprof/internal/sig"
	"commprof/internal/trace"
)

// TestProfileAccuracyDisabledByDefault pins the zero-value contract: no
// accuracy knobs, no Report.Accuracy section.
func TestProfileAccuracyDisabledByDefault(t *testing.T) {
	rep, err := Profile(Options{Workload: "fft", Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy != nil {
		t.Fatalf("Report.Accuracy = %+v without opting in", rep.Accuracy)
	}
	if strings.Contains(rep.Summary(), "accuracy monitor") {
		t.Error("summary mentions the accuracy monitor on an unmonitored run")
	}
}

// TestRecordAccuracyMatchesOfflineExactDiff is the facade-level ground-truth
// acceptance check: Record a run with the monitor at full sampling, then
// replay the recorded trace through the offline lockstep methodology (a
// bounded and an exact detector side by side, the §V-A3 exact diff) and
// require the identical FPR — same counts, not approximately.
func TestRecordAccuracyMatchesOfflineExactDiff(t *testing.T) {
	const threads, slots = 8, 256
	opts := Options{
		Workload: "fft", Threads: threads, InputSize: "simsmall",
		SignatureSlots: slots, BloomFPRate: 0.001,
		AccuracyTargetFPR: 0.05, AccuracySampleBits: 0,
	}
	var buf bytes.Buffer
	rep, err := Record(opts, &buf)
	if err != nil {
		t.Fatal(err)
	}
	acc := rep.Accuracy
	if acc == nil {
		t.Fatal("Report.Accuracy nil on a monitored Record run")
	}

	// Offline reference over the recorded stream.
	dec, err := trace.NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	asym, err := sig.NewAsymmetric(sig.Options{Slots: slots, Threads: threads, FPRate: opts.BloomFPRate})
	if err != nil {
		t.Fatal(err)
	}
	dA, err := detect.New(detect.Options{Threads: threads, Backend: asym, Table: dec.Table()})
	if err != nil {
		t.Fatal(err)
	}
	dP, err := detect.New(detect.Options{Threads: threads, Backend: sig.NewPerfect(threads), Table: dec.Table()})
	if err != nil {
		t.Fatal(err)
	}
	var sigEvents, falsePos uint64
	if err := dec.ForEach(func(a trace.Access) error {
		evA, okA := dA.Process(a)
		evP, okP := dP.Process(a)
		if okA {
			sigEvents++
			if !okP || evA.Writer != evP.Writer {
				falsePos++
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sigEvents == 0 {
		t.Fatal("offline reference saw no signature events")
	}
	if acc.SigEvents != sigEvents || acc.FalsePositives != falsePos {
		t.Errorf("online %d events / %d fp, offline exact diff %d / %d",
			acc.SigEvents, acc.FalsePositives, sigEvents, falsePos)
	}
	if want := float64(falsePos) / float64(sigEvents); acc.EstimatedFPR != want {
		t.Errorf("EstimatedFPR %v, offline %v", acc.EstimatedFPR, want)
	}
}

// TestProfileAccuracyReport exercises the serial Profile path end to end and
// checks the report section's internal consistency plus the summary line.
func TestProfileAccuracyReport(t *testing.T) {
	rep, err := Profile(Options{
		Workload: "radix", Threads: 8, SignatureSlots: 512,
		AccuracyTargetFPR: 0.02, AccuracySampleBits: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := rep.Accuracy
	if acc == nil {
		t.Fatal("Report.Accuracy nil")
	}
	if acc.SampleBits != 1 || acc.SampleFraction != 0.5 || acc.TargetFPR != 0.02 {
		t.Errorf("config echo wrong: %+v", acc)
	}
	if acc.SigEvents == 0 || acc.SampledAccesses == 0 || acc.SampledGranules == 0 {
		t.Fatalf("monitored run saw nothing: %+v", acc)
	}
	if acc.Confirmed+acc.FalsePositives != acc.SigEvents {
		t.Errorf("verdicts do not sum: %+v", acc)
	}
	if acc.EstimatedFPR < acc.FPRLow || acc.EstimatedFPR > acc.FPRHigh {
		t.Errorf("CI does not bracket the point estimate: %+v", acc)
	}
	if acc.CurrentSlots != 512 {
		t.Errorf("CurrentSlots = %d, want 512", acc.CurrentSlots)
	}
	// 512 slots against radix is deeply saturated: the advisor must ask for
	// more and the alarm must have latched.
	if acc.RecommendedSlots <= acc.CurrentSlots {
		t.Errorf("saturated run not resized: %+v", acc)
	}
	if acc.RecommendedBytes == 0 || acc.ShadowBytes == 0 {
		t.Errorf("memory pricing missing: %+v", acc)
	}
	if acc.FillRatio <= 0 || acc.FillRatio > 1 {
		t.Errorf("FillRatio = %v", acc.FillRatio)
	}
	if acc.Alarm == "" {
		t.Error("saturated run did not alarm")
	}
	sum := rep.Summary()
	if !strings.Contains(sum, "accuracy monitor: 1/2 of granules shadowed") {
		t.Errorf("summary missing accuracy line:\n%s", sum)
	}
	if !strings.Contains(sum, "ACCURACY ALARM:") {
		t.Errorf("summary missing alarm line:\n%s", sum)
	}
}

// TestProfileShardedAccuracy exercises the pipeline path: per-shard monitors
// merged into the same report section, and the telemetry gauges bound to the
// merged state.
func TestProfileShardedAccuracy(t *testing.T) {
	tel := NewTelemetry()
	rep, err := Profile(Options{
		Workload: "fft", Threads: 8, SignatureSlots: 512,
		AnalysisShards:    4,
		AccuracyTargetFPR: 0.05, AccuracySampleBits: 0,
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := rep.Accuracy
	if acc == nil {
		t.Fatal("Report.Accuracy nil on sharded run")
	}
	if acc.SigEvents == 0 || acc.Confirmed+acc.FalsePositives != acc.SigEvents {
		t.Errorf("merged verdicts inconsistent: %+v", acc)
	}
	if rep.Telemetry == nil {
		t.Fatal("Report.Telemetry nil")
	}
	if _, ok := rep.Telemetry.Gauges["accuracy_estimated_fpr"]; !ok {
		t.Errorf("accuracy_estimated_fpr gauge missing: %v", rep.Telemetry.Gauges)
	}
	if _, ok := rep.Telemetry.Gauges["sig_fill_ratio"]; !ok {
		t.Errorf("sig_fill_ratio gauge missing: %v", rep.Telemetry.Gauges)
	}
	if rep.Telemetry.Counters["accuracy_sampled_total"] == 0 {
		t.Error("accuracy_sampled_total = 0 on a fully sampled run")
	}
	snap := tel.Progress()
	if snap.AccuracySampled == 0 {
		t.Errorf("progress snapshot missing accuracy fields: %+v", snap)
	}
}

// TestReplayAccuracy covers both offline replay analysers: serial and
// sharded replays of the same trace must agree on the monitor's merged
// counters (exact backends are not in play, but the production signature is
// configured identically and replay is deterministic; sharding only
// repartitions slots, so only the verdicts may differ — the sampled access
// counts must match exactly).
func TestReplayAccuracy(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Record(Options{Workload: "fft", Threads: 8}, &buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	opts := Options{SignatureSlots: 4096, AccuracyTargetFPR: 0.05, AccuracySampleBits: 0}
	serial, err := Replay(bytes.NewReader(raw), 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	sharded := opts
	sharded.AnalysisShards = 2
	par, err := Replay(bytes.NewReader(raw), 8, sharded)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Accuracy == nil || par.Accuracy == nil {
		t.Fatalf("Replay accuracy missing: serial=%v sharded=%v", serial.Accuracy, par.Accuracy)
	}
	if serial.Accuracy.SampledAccesses != par.Accuracy.SampledAccesses ||
		serial.Accuracy.SampledGranules != par.Accuracy.SampledGranules {
		t.Errorf("sampled population diverged: serial %+v, sharded %+v", serial.Accuracy, par.Accuracy)
	}
	if serial.Accuracy.SigEvents == 0 {
		t.Error("serial replay monitor saw no events")
	}
}

// TestReplayShardedTelemetryBound is the regression test for the unbound
// sharded-replay gauges: Replay with AnalysisShards plus Telemetry used to
// skip telemetry wiring entirely, leaving Report.Telemetry nil and the
// redundancy_hit_rate gauge absent from scrapes. The gauges must now bind to
// the pipeline engine's merged per-shard state, which stays readable after
// Close.
func TestReplayShardedTelemetryBound(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Record(Options{Workload: "ocean_cp", Threads: 8}, &buf); err != nil {
		t.Fatal(err)
	}
	tel := NewTelemetry()
	rep, err := Replay(&buf, 8, Options{
		AnalysisShards:      2,
		RedundancyCacheBits: 12,
		Telemetry:           tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Telemetry == nil {
		t.Fatal("Report.Telemetry nil on sharded replay with Options.Telemetry set")
	}
	hit, ok := rep.Telemetry.Gauges["redundancy_hit_rate"]
	if !ok {
		t.Fatalf("redundancy_hit_rate gauge missing: %v", rep.Telemetry.Gauges)
	}
	if rep.Redundancy == nil || rep.Redundancy.Hits == 0 {
		t.Fatalf("test needs fast-path hits to be meaningful: %+v", rep.Redundancy)
	}
	if hit <= 0 {
		t.Errorf("redundancy_hit_rate = %v with %d hits", hit, rep.Redundancy.Hits)
	}
	for _, g := range []string{"pipeline_shard_0_depth", "pipeline_shard_1_depth", "pipeline_dropped_reads"} {
		if _, ok := rep.Telemetry.Gauges[g]; !ok {
			t.Errorf("%s gauge missing: %v", g, rep.Telemetry.Gauges)
		}
	}
}

// TestAccuracyOptionValidation covers facade-level rejection of bad knobs.
func TestAccuracyOptionValidation(t *testing.T) {
	if _, err := Profile(Options{Workload: "fft", Threads: 4, AccuracyTargetFPR: 1.5}); err == nil {
		t.Error("TargetFPR 1.5 accepted")
	}
	if _, err := Profile(Options{Workload: "fft", Threads: 4, AccuracyTargetFPR: 0.05, AccuracySampleBits: 99}); err == nil {
		t.Error("SampleBits 99 accepted")
	}
	if _, err := Profile(Options{Workload: "fft", Threads: 4, AnalysisShards: 2, AccuracyTargetFPR: 1.5}); err == nil {
		t.Error("sharded path accepted TargetFPR 1.5")
	}
}
