package commprof

import (
	"commprof/internal/mapping"
)

// Topology describes a machine for thread mapping: Sockets groups of
// CoresPerSocket cores.
type Topology struct {
	Sockets        int
	CoresPerSocket int
}

// ThreadMapping is a communication-aware thread→core placement.
type ThreadMapping struct {
	// Core[i] is the core assigned to thread i.
	Core []int
	// LocalShare is the fraction of communicated bytes that stay within a
	// socket under this mapping; IdentityShare is the same for the trivial
	// thread i → core i placement.
	LocalShare    float64
	IdentityShare float64
}

// MapThreads computes a communication-aware thread→core mapping from a
// communication matrix — the paper's §III-A application: placing threads
// that communicate heavily on nearby cores reduces cache replication and
// misses. The result is never worse than the identity placement.
func MapThreads(m Matrix, topo Topology) (*ThreadMapping, error) {
	im, err := m.toInternal()
	if err != nil {
		return nil, err
	}
	res, err := mapping.Greedy(im, mapping.Topology{
		Sockets: topo.Sockets, CoresPerSocket: topo.CoresPerSocket,
	})
	if err != nil {
		return nil, err
	}
	return &ThreadMapping{
		Core:          res.Core,
		LocalShare:    res.LocalShare,
		IdentityShare: res.IdentityShare,
	}, nil
}
