// Package commprof is a loop-level communication-pattern profiler for
// shared-memory parallel programs — a from-scratch reproduction of
// "Characterizing Loop-Level Communication Patterns in Shared Memory
// Applications" (Mazaheri, Jannesari, Mirzaei, Wolf — ICPP 2015).
//
// The profiler detects read-after-write dependencies between threads on the
// fly using an asymmetric signature memory (a two-level bloom-filter read
// signature plus a one-level last-writer write signature), and aggregates
// them into communication matrices nested by static code region (functions
// and annotated loops). From the matrices it derives per-thread load metrics
// (Eq. 1), communication phases, and parallel-pattern classifications.
//
// Three entry points:
//
//   - Profile runs one of the bundled SPLASH-2-style benchmarks under the
//     profiler and returns a full Report.
//   - ProfileTrace analyses a recorded access trace you supply.
//   - Run executes your own workload body on the simulated thread engine
//     with the profiler attached.
package commprof

import (
	"fmt"
	"time"

	"commprof/internal/accuracy"
	"commprof/internal/comm"
	"commprof/internal/detect"
	"commprof/internal/exec"
	"commprof/internal/metrics"
	"commprof/internal/obs"
	"commprof/internal/sig"
	"commprof/internal/splash"
	"commprof/internal/trace"
)

// Options configures a profiling run.
type Options struct {
	// Workload names a bundled benchmark (see Workloads). Required for
	// Profile; ignored by ProfileTrace and Run.
	Workload string
	// Threads is the simulated thread count (default 32, the paper's
	// configuration).
	Threads int
	// InputSize is "simdev", "simsmall" or "simlarge" (default "simdev").
	InputSize string
	// Seed drives all workload randomness. The zero value is a sentinel
	// meaning "unset" and is rewritten to the default 42 by setDefaults, so
	// an explicit Seed: 0 cannot be distinguished from leaving the field
	// empty — both run with seed 42. Pick any other value to seed
	// explicitly.
	Seed int64
	// SignatureSlots is the signature size n (default 2^20). Larger means
	// fewer false dependencies and more memory (Eq. 2).
	SignatureSlots uint64
	// BloomFPRate is the per-slot bloom-filter false-positive rate. The
	// zero value is a sentinel meaning "unset" and becomes the paper's
	// 0.001; an explicit 0 is not a valid rate (sig rejects rates outside
	// (0,1)), so the sentinel loses no expressible configuration.
	BloomFPRate float64
	// PhaseWindow, when non-zero, enables windowed phase observability with
	// the given logical-time window length: §V-A4 phase segmentation
	// (Report.Phases), a classified pattern timeline with whole-program
	// transitions and a per-hot-loop digest (Report.PhaseTimeline), and —
	// with Options.Telemetry — live current-pattern gauges plus phase fields
	// in /progress. Windows are bucketed by the global access index every
	// access already carries, so the layer composes with AnalysisShards:
	// shard partials merge by summation into exactly the window set the
	// serial analyser builds.
	PhaseWindow uint64
	// Parallel runs threads as free goroutines instead of the deterministic
	// round-robin scheduler. Results remain correct but are no longer
	// bit-reproducible across runs.
	Parallel bool
	// SampleBurst/SamplePeriod enable read sampling (the paper's §VII
	// overhead-reduction outlook): of every SamplePeriod reads per thread,
	// the first SampleBurst are analysed; writes are always analysed. Zero
	// values disable sampling. Detected volumes scale by roughly
	// SampleBurst/SamplePeriod.
	SampleBurst, SamplePeriod uint32
	// GranularityBits coarsens the analysis granularity: addresses are
	// shifted right by this amount before consulting the signature (0 =
	// per-address, 6 = 64-byte cache lines). Coarser analysis reduces
	// signature collisions but merges neighbouring variables (false
	// sharing appears).
	GranularityBits uint
	// DisableCoalesce turns off the static access-coalescing pass on
	// MiniPar runs (ProfileMiniPar; see internal/passes.Coalesce). The
	// pass is on by default: probes the compiler proves redundant within a
	// basic block or simple loop body are elided before the analyser ever
	// sees them, shrinking every downstream stage while leaving scheduling
	// and timestamps bit-identical. Elisions are exact under sync-only
	// scheduling (a quantum no thread exhausts); under the default
	// preemptive quantum they assume the usual data-race-free/no-false-
	// sharing discipline between synchronisation points — set this to true
	// to profile code that races within a scheduling quantum. Ignored by
	// the bundled SPLASH workloads, which issue accesses directly rather
	// than through compiled MiniPar IR.
	DisableCoalesce bool
	// MaxHotspots caps the number of ranked hotspot loops in the report.
	// 0 means the default of 10; a negative value lifts the cap entirely.
	MaxHotspots int
	// AnalysisShards, when positive, replaces the serial in-thread analyser
	// with the sharded parallel pipeline (internal/pipeline): each access is
	// routed by address hash to one of AnalysisShards shards, each owning a
	// private partition of the signature slot budget, a bounded queue and a
	// dedicated worker goroutine; shard matrices merge into the standard
	// report at the end of the run. 0 (the default) keeps the paper's serial
	// analysis. Composes with PhaseWindow: shard workers bucket events by
	// the global access index and the per-shard window partials merge to the
	// serial analyser's exact window set.
	AnalysisShards int
	// ShardQueueCapacity bounds each shard's queue in accesses when
	// AnalysisShards is active (0 = the pipeline default of 8192).
	ShardQueueCapacity int
	// ShardPolicy selects the sharded analyser's overload behaviour:
	// ShardPolicyBlock (default) applies backpressure, ShardPolicyDegrade
	// thins reads while a queue is saturated. Ignored when AnalysisShards
	// is 0.
	ShardPolicy ShardPolicy
	// ShardBatchSize sets the sharded analyser's producer staging batch and
	// worker drain limit in accesses (0 = the pipeline default of 256).
	// Larger batches amortise shard-queue locking further; smaller ones
	// reduce detection latency and staging residency. Ignored when
	// AnalysisShards is 0.
	ShardBatchSize int
	// RedundancyCacheBits, when non-zero, enables the redundancy-filtering
	// fast path: a 2^bits-entry direct-mapped cache of the last (thread,
	// kind) to touch each analysis granule, which skips the signature
	// backend for accesses Algorithm 1 provably classifies as
	// non-communicating — a thread re-reading or re-writing what it just
	// touched (see internal/redundancy). Detected dependencies and matrices
	// are unchanged on a collision-free backend and statistically unchanged
	// on the asymmetric signature; Report.Redundancy carries the hit-rate
	// telemetry. 10–14 bits (a cache that fits in L1/L2) is the sweet spot.
	// The serial analyser uses the cache only under the deterministic
	// scheduler — with Parallel the target threads call the detector
	// concurrently and the single-consumer cache would race, so it is
	// silently disabled; the sharded analyser (AnalysisShards > 0) gives
	// every shard worker a private cache and filters in any mode.
	RedundancyCacheBits uint
	// AccuracyTargetFPR, when positive (and < 1), enables the online
	// signature-accuracy monitor: a deterministically hash-selected
	// 1/2^AccuracySampleBits slice of the granule address space is analysed
	// a second time by an exact collision-free shadow, and every production
	// communicating-access verdict in the slice is confirmed or refuted
	// against it. The run gains Report.Accuracy — a live estimate of the
	// signature false-positive rate (the paper's §V-A3 number) with a 95%
	// confidence interval, an Eq. 2 recommended-signature-size advisor, and
	// a warn-once saturation alarm — at the cost of shadowing the sampled
	// slice exactly. Zero (the default) disables the monitor. The value is
	// the FPR the run is expected to stay under; DefaultAccuracyTargetFPR
	// is a reasonable starting point. Like RedundancyCacheBits, the serial
	// analyser monitors only under the deterministic scheduler — with
	// Parallel the single-consumer shadow pairing would race — while the
	// sharded analyser (AnalysisShards > 0) monitors per shard in any mode.
	AccuracyTargetFPR float64
	// AccuracySampleBits is k in the 1/2^k accuracy sample: 0 shadows every
	// granule (exact — Report.Accuracy.EstimatedFPR equals the offline
	// exact-diff FPR, at unbounded shadow memory), each added bit halves
	// the monitored slice and the monitor's cost. Ignored unless
	// AccuracyTargetFPR is set. At most accuracy.MaxSampleBits (16).
	AccuracySampleBits uint
	// TraceFormat selects the trace codec version Record writes: 1 (fixed
	// 29-byte records, no thread count in the header), 2 (v1 records plus
	// thread count and region file:line) or 3 (the default — compact
	// delta/varint block encoding, typically 3-10x smaller; see
	// internal/trace and DESIGN §9). 0 means the default. Replay
	// auto-detects the version from the stream header, so the knob only
	// affects writing.
	TraceFormat int
	// Telemetry, when non-nil, threads self-observability probes through
	// the signature, detector and executor layers, records run-phase spans,
	// and attaches an end-of-run snapshot as Report.Telemetry. See
	// NewTelemetry. Nil (the default) keeps the pipeline uninstrumented.
	Telemetry *Telemetry
}

func (o *Options) setDefaults() {
	if o.Threads == 0 {
		o.Threads = 32
	}
	if o.InputSize == "" {
		o.InputSize = "simdev"
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.SignatureSlots == 0 {
		o.SignatureSlots = 1 << 20
	}
	if o.BloomFPRate == 0 {
		o.BloomFPRate = 0.001
	}
	if o.MaxHotspots == 0 {
		o.MaxHotspots = 10
	}
	if o.TraceFormat == 0 {
		o.TraceFormat = trace.DefaultVersion
	}
}

// DefaultAccuracyTargetFPR is a reasonable Options.AccuracyTargetFPR when
// the caller has no specific budget: 5%, between the paper's 8.4% and 2.1%
// operating points.
const DefaultAccuracyTargetFPR = accuracy.DefaultTargetFPR

// accuracyOptions maps the public accuracy knobs onto internal/accuracy
// options; nil when the monitor is disabled (AccuracyTargetFPR == 0).
func (o Options) accuracyOptions(threads int, probes *obs.Probes) *accuracy.Options {
	if o.AccuracyTargetFPR <= 0 {
		return nil
	}
	return &accuracy.Options{
		Threads:    threads,
		SampleBits: o.AccuracySampleBits,
		TargetFPR:  o.AccuracyTargetFPR,
		Probes:     probes.AccuracyProbes(),
	}
}

// newAccuracyMonitor builds the serial analyser's monitor, or nil when the
// monitor is disabled.
func newAccuracyMonitor(o Options, threads int, probes *obs.Probes) (*accuracy.Monitor, error) {
	ao := o.accuracyOptions(threads, probes)
	if ao == nil {
		return nil, nil
	}
	return accuracy.New(*ao)
}

// attachAccuracy renders a serial detector's monitor into Report.Accuracy:
// it runs the final alarm evaluation against the production signature's
// closing fill ratio, derives the estimate and the Eq. 2 recommendation, and
// (when the run had telemetry) attaches the recorded fill trajectory. A
// no-op when the run was unmonitored.
func attachAccuracy(rep *Report, d *detect.Detector, opts Options, threads int, backend *sig.Asymmetric, tel *Telemetry) {
	mon := d.Accuracy()
	if mon == nil {
		return
	}
	fill := backend.FillRatio(256)
	mon.Evaluate(fill)
	est := mon.Estimate()
	rec := accuracy.Recommend(est, opts.SignatureSlots, threads, opts.BloomFPRate)
	alarm, _ := mon.Alarm()
	rep.Accuracy = accuracyReport(est, rec, mon.ShadowFootprintBytes(), fill, tel.fillTrajectory(), alarm)
}

// Workloads returns the names of the bundled SPLASH-2-style benchmarks.
func Workloads() []string { return splash.Names() }

// SignatureMemoryBytes is Eq. 2: the fixed analysis-memory bound for a
// signature with n slots, t threads and the given bloom false-positive rate.
func SignatureMemoryBytes(slots uint64, threads int, fpRate float64) uint64 {
	return sig.SigMem(slots, threads, fpRate)
}

// Profile runs the named bundled workload under the profiler.
func Profile(opts Options) (*Report, error) {
	opts.setDefaults()
	tel := opts.Telemetry
	setup := tel.span("workload-setup")
	size, err := splash.ParseSize(opts.InputSize)
	if err != nil {
		return nil, err
	}
	prog, err := splash.New(opts.Workload, splash.Config{
		Threads: opts.Threads, Size: size, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	probes := tel.probes()
	if opts.AnalysisShards > 0 {
		return profileSharded(opts, prog, tel, probes, setup)
	}
	backend, err := sig.NewAsymmetric(sig.Options{
		Slots: opts.SignatureSlots, Threads: opts.Threads, FPRate: opts.BloomFPRate,
		Probes: probes.SigProbes(),
	})
	if err != nil {
		return nil, err
	}
	var seg *metrics.PhaseSegmenter
	dopts := detect.Options{
		Threads: opts.Threads, Backend: backend, Table: prog.Table(),
		GranularityBits: opts.GranularityBits,
		Probes:          probes.DetectProbes(),
	}
	if !opts.Parallel {
		// Parallel mode would drive the single-consumer cache from many
		// goroutines at once; see the Options.RedundancyCacheBits contract.
		// The accuracy monitor has the same single-consumer contract: the
		// production and shadow verdicts of a granule must interleave in one
		// temporal order to stay paired.
		dopts.RedundancyCacheBits = opts.RedundancyCacheBits
		dopts.Accuracy, err = newAccuracyMonitor(opts, opts.Threads, probes)
		if err != nil {
			return nil, err
		}
	}
	ps, err := newPhaseState(opts, prog.Table(), tel, probes)
	if err != nil {
		return nil, err
	}
	if ps != nil {
		// The windowed layer tolerates out-of-order events behind one mutex,
		// so the segmenter runs under the parallel scheduler too (windows may
		// then close before all their events land; the final report
		// recomputes from the complete set).
		seg, err = metrics.NewPhaseSegmenter(opts.Threads, opts.PhaseWindow, phaseThreshold)
		if err != nil {
			return nil, err
		}
		dopts.OnEvent = seg.Observe
	}
	d, err := detect.New(dopts)
	if err != nil {
		return nil, err
	}
	probe := d.Probe()
	sampleFraction := 1.0
	var smp *detect.Sampler
	if opts.SamplePeriod > 0 {
		smp, err = detect.NewSampler(d, opts.SampleBurst, opts.SamplePeriod)
		if err != nil {
			return nil, err
		}
		probe = smp.Probe()
		sampleFraction = smp.SampleFraction()
	}
	eng := exec.New(exec.Options{
		Threads: opts.Threads, Probe: probe, Parallel: opts.Parallel,
		Probes: probes.EngineProbes(),
	})
	tel.wireRun(eng, d, backend, smp)
	if seg != nil {
		onClose := ps.onClose()
		ps.wire(func() int { return seg.Advance(onClose) })
	}
	setup.End()
	run := tel.span("engine-run")
	stats, err := prog.Run(eng)
	run.End()
	if err != nil {
		return nil, err
	}
	rep, tree, err := buildReport(opts.Workload, opts.Threads, d, stats, backend.FootprintBytes(), opts.MaxHotspots, tel)
	if err != nil {
		return nil, err
	}
	attachAccuracy(rep, d, opts, opts.Threads, backend, tel)
	rep.SampleFraction = sampleFraction
	if seg != nil {
		seg.Flush(ps.onClose())
		ps.attach(rep, seg.WindowSet())
	}
	tel.finishRun(rep, tree)
	return rep, nil
}

func buildReport(name string, threads int, d *detect.Detector, stats exec.Stats, sigBytes uint64, maxHotspots int, tel *Telemetry) (*Report, *comm.Tree, error) {
	build := tel.span("tree-build")
	stages := tel.probes().StageProbes()
	var t0 time.Time
	if stages != nil {
		t0 = time.Now()
	}
	tree, err := d.Tree()
	if err != nil {
		return nil, nil, err
	}
	if err := tree.CheckSummationLaw(); err != nil {
		return nil, nil, fmt.Errorf("commprof: internal invariant violated: %w", err)
	}
	if stages != nil {
		stages.Merge.Observe(uint64(time.Since(t0)))
	}
	build.End()
	dstats := d.Stats()
	rep, tree, err := reportFromTree(name, threads, tree, dstats.Detected, dstats.CommBytes, stats, sigBytes, maxHotspots, tel)
	if err != nil {
		return nil, nil, err
	}
	if st, ok := d.RedundancyStats(); ok {
		rep.Redundancy = redundancyReport(st)
	}
	return rep, tree, nil
}

// reportFromTree renders a finished communication tree into the public report
// form. Both analysers end here: the serial detector via buildReport, the
// sharded pipeline via buildReportSharded.
func reportFromTree(name string, threads int, tree *comm.Tree, detected, commBytes uint64, stats exec.Stats, sigBytes uint64, maxHotspots int, tel *Telemetry) (*Report, *comm.Tree, error) {
	report := tel.span("report")
	defer report.End()
	rep := &Report{
		Workload:       name,
		Threads:        threads,
		Accesses:       stats.Accesses,
		Dependencies:   detected,
		CommBytes:      commBytes,
		SignatureBytes: sigBytes,
		SampleFraction: 1,
		Global:         fromInternal(tree.Global),
	}
	tree.Walk(func(n *comm.Node, depth int) {
		rep.Regions = append(rep.Regions, RegionReport{
			Name:            n.Region.Label(),
			File:            n.Region.File,
			Line:            n.Region.Line,
			Kind:            n.Region.Kind.String(),
			Depth:           depth,
			Accesses:        n.Accesses,
			OwnBytes:        n.Own.Total(),
			CumulativeBytes: n.Cumulative.Total(),
			Matrix:          fromInternal(n.Cumulative),
		})
	})
	if maxHotspots < 0 {
		maxHotspots = tree.NodeCount() // negative lifts the cap: rank every loop
	}
	for _, h := range tree.Hotspots(maxHotspots) {
		load := metrics.ThreadLoad(h.Node.Cumulative)
		rep.Hotspots = append(rep.Hotspots, HotspotReport{
			Region:        h.Node.Region.Label(),
			Bytes:         h.Bytes,
			Share:         h.Share,
			Load:          load,
			ActiveThreads: metrics.ActiveThreads(load),
			BalanceIndex:  metrics.BalanceIndex(load),
		})
	}
	return rep, tree, nil
}
