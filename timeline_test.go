package commprof

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata golden files")

// timelineEvent mirrors the Chrome/Perfetto trace-event JSON shape for
// decoding in tests. Pointer fields distinguish "absent" from zero so the
// schema checks can require ts/pid/tid on every event.
type timelineEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	TS    *float64       `json:"ts"`
	Dur   float64        `json:"dur"`
	Pid   *int           `json:"pid"`
	Tid   *int           `json:"tid"`
	Scope string         `json:"s"`
	Args  map[string]any `json:"args"`
}

// validateTimeline is the trace-event schema check shared by the live-export
// and golden tests: the payload must be a JSON array whose events all carry
// ph/ts/pid/tid, use only known phase letters, and keep B/E duration pairs
// balanced per track. It returns the events plus the set of track names
// declared via thread_name metadata.
func validateTimeline(t *testing.T, data []byte) ([]timelineEvent, map[string]bool) {
	t.Helper()
	var evs []timelineEvent
	if err := json.Unmarshal(data, &evs); err != nil {
		t.Fatalf("timeline is not a JSON array of trace events: %v", err)
	}
	tracks := make(map[string]bool)
	depth := make(map[int]int)
	for i, ev := range evs {
		switch ev.Ph {
		case "B", "E", "X", "i", "C", "M":
		default:
			t.Fatalf("event %d has unknown phase %q: %+v", i, ev.Ph, ev)
		}
		if ev.TS == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d is missing ts/pid/tid: %+v", i, ev)
		}
		if *ev.TS < 0 {
			t.Fatalf("event %d has negative ts %v", i, *ev.TS)
		}
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				name, _ := ev.Args["name"].(string)
				if name == "" && *ev.Tid != 0 {
					t.Fatalf("thread_name metadata for tid %d has no name", *ev.Tid)
				}
				tracks[name] = true
			}
		case "B":
			depth[*ev.Tid]++
		case "E":
			depth[*ev.Tid]--
			if depth[*ev.Tid] < 0 {
				t.Fatalf("event %d: E without matching B on tid %d", i, *ev.Tid)
			}
		case "i":
			if ev.Scope != "t" {
				t.Fatalf("instant %q has scope %q, want thread scope \"t\"", ev.Name, ev.Scope)
			}
		case "C":
			if _, ok := ev.Args["value"]; !ok {
				t.Fatalf("counter %q has no args.value", ev.Name)
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Fatalf("tid %d ends with %d unclosed B events", tid, d)
		}
	}
	return evs, tracks
}

// shardedTimelineRun replays a pinned deterministic recording through the
// sharded pipeline with the timeline enabled and returns the report plus the
// exported trace-event JSON.
func shardedTimelineRun(t testing.TB, size string, shards int) (*Report, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := Record(Options{Workload: "fft", Threads: 8, InputSize: size, Seed: 42}, &buf); err != nil {
		t.Fatal(err)
	}
	tel := NewTelemetry()
	tel.EnableTimeline()
	rep, err := Replay(bytes.NewReader(buf.Bytes()), 8, Options{
		AnalysisShards:     shards,
		ShardQueueCapacity: 512,
		ShardBatchSize:     256,
		Telemetry:          tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := tel.WriteTimeline(&out); err != nil {
		t.Fatal(err)
	}
	return rep, out.Bytes()
}

// TestTimelineShardedReplay is the acceptance check for the timeline export:
// a sharded simlarge replay produces valid trace-event JSON with one track
// per shard worker and producer, facade phases on the run track, and counter
// samples from the periodic tick.
func TestTimelineShardedReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("simlarge replay in -short mode")
	}
	const shards = 4
	_, data := shardedTimelineRun(t, "simlarge", shards)
	evs, tracks := validateTimeline(t, data)

	want := []string{"run", "engine", "counters", "producer-0"}
	for i := 0; i < shards; i++ {
		want = append(want, "shard-"+string(rune('0'+i)))
	}
	for _, name := range want {
		if !tracks[name] {
			t.Errorf("track %q missing; have %v", name, tracks)
		}
	}

	var phases, counters, spans int
	for _, ev := range evs {
		switch ev.Ph {
		case "X":
			phases++
		case "C":
			counters++
		case "B":
			spans++
		}
	}
	if phases == 0 {
		t.Error("no facade phase spans (X events) on the run track")
	}
	if spans == 0 {
		t.Error("no worker/producer duration spans (B events)")
	}
	if counters == 0 {
		t.Error("no counter samples; the periodic tick never fired on a simlarge replay")
	}
	var sawQueueDepth bool
	for _, ev := range evs {
		if ev.Ph == "C" && strings.HasPrefix(ev.Name, "queue_depth_shard_") {
			sawQueueDepth = true
		}
	}
	if !sawQueueDepth {
		t.Error("no queue_depth_shard_* counter track")
	}
}

// TestTimelineGolden pins the export format: the committed golden file (from
// a pinned deterministic run; regenerate with go test -run TimelineGolden
// -update) must stay schema-valid and keep the expected track layout, so any
// format change is an explicit diff in review.
func TestTimelineGolden(t *testing.T) {
	path := filepath.Join("testdata", "timeline_golden.json")
	if *updateGolden {
		_, data := shardedTimelineRun(t, "simdev", 2)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	evs, tracks := validateTimeline(t, data)
	if len(evs) == 0 {
		t.Fatal("golden timeline is empty")
	}
	for _, name := range []string{"run", "engine", "counters", "shard-0", "shard-1", "producer-0"} {
		if !tracks[name] {
			t.Errorf("golden is missing track %q; have %v", name, tracks)
		}
	}
	// The facade phases must appear as complete spans on the run track.
	var runPhases []string
	for _, ev := range evs {
		if ev.Ph == "X" {
			runPhases = append(runPhases, ev.Name)
		}
	}
	for _, want := range []string{"tree-build", "report"} {
		found := false
		for _, n := range runPhases {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("golden run track lacks phase %q; got %v", want, runPhases)
		}
	}
}

// TestReportOverheadAttribution checks the self-attribution acceptance bar:
// on a sharded replay the stage buckets must account for at least 90% of the
// engine wall time, and the bucket decomposition must sum exactly to the
// attributed total.
func TestReportOverheadAttribution(t *testing.T) {
	rep, _ := shardedTimelineRun(t, "simdev", 2)
	ov := rep.Overhead
	if ov == nil {
		t.Fatal("Report.Overhead is nil on an instrumented sharded replay")
	}
	if ov.EngineWallNanos == 0 {
		t.Fatal("EngineWallNanos = 0")
	}
	sum := ov.DecodeNanos + ov.QueueNanos + ov.SignatureNanos +
		ov.RedundancyNanos + ov.ShadowNanos + ov.WindowNanos + ov.MergeNanos
	if sum != ov.AttributedNanos {
		t.Errorf("bucket sum %d != AttributedNanos %d", sum, ov.AttributedNanos)
	}
	if ov.AttributedShare < 0.9 {
		t.Errorf("AttributedShare = %.3f, want >= 0.9 (%+v)", ov.AttributedShare, ov)
	}
	if ov.DecodeNanos == 0 || ov.QueueNanos == 0 {
		t.Errorf("decode/queue buckets empty on a replay: %+v", ov)
	}
}

// TestProgressStageLatencies checks the per-stage latency table surfaced on
// /progress: a sharded replay must populate decode, producer and
// batch_service rows with sane quantiles.
func TestProgressStageLatencies(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Record(Options{Workload: "fft", Threads: 8, Seed: 42}, &buf); err != nil {
		t.Fatal(err)
	}
	tel := NewTelemetry()
	if _, err := Replay(bytes.NewReader(buf.Bytes()), 8, Options{
		AnalysisShards: 2, Telemetry: tel,
	}); err != nil {
		t.Fatal(err)
	}
	snap := tel.Progress()
	got := make(map[string]StageLatency)
	for _, sl := range snap.Stages {
		got[sl.Stage] = sl
	}
	for _, stage := range []string{"decode", "producer", "batch_service"} {
		sl, ok := got[stage]
		if !ok || sl.Count == 0 {
			t.Errorf("stage %q missing or empty in progress snapshot: %v", stage, snap.Stages)
			continue
		}
		if sl.MeanNanos <= 0 || sl.P50Nanos <= 0 || sl.P99Nanos < sl.P50Nanos {
			t.Errorf("stage %q has implausible latencies: %+v", stage, sl)
		}
	}
}

// TestTelemetryConcurrentScrape hammers /metrics and /progress from several
// goroutines while a sharded run is live. It exists to run under -race: the
// scrape path shares the registry, tracer, timeline and stage histograms
// with the pipeline hot path.
func TestTelemetryConcurrentScrape(t *testing.T) {
	tel := NewTelemetry()
	tel.EnableTimeline()
	addr, err := tel.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tel.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	scrape := func(url string) {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			resp, err := http.Get(url)
			if err != nil {
				t.Errorf("GET %s: %v", url, err)
				return
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				t.Errorf("read %s: %v", url, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("GET %s: status %d", url, resp.StatusCode)
				return
			}
		}
	}
	for i := 0; i < 2; i++ {
		wg.Add(2)
		go scrape("http://" + addr + "/metrics")
		go scrape("http://" + addr + "/progress")
	}

	rep, err := Profile(Options{Workload: "radix", Threads: 8, AnalysisShards: 3, Telemetry: tel})
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dependencies == 0 {
		t.Fatal("live sharded run under scrape load detected nothing")
	}
	var out bytes.Buffer
	if err := tel.WriteTimeline(&out); err != nil {
		t.Fatal(err)
	}
	validateTimeline(t, out.Bytes())
}
