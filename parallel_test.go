package commprof

import (
	"reflect"
	"testing"
)

// TestParallelDeterministicTotalInvariance pins that the parallel goroutine
// engine and the deterministic round-robin scheduler agree on the global
// matrix for a race-free workload. The workload is a single-writer scatter
// chosen to be order-invariant by construction: thread 0 writes a distinct
// block of K addresses per consumer, a barrier separates production from
// consumption, and each other thread then reads only its own block. With one
// writer the write signature records the same owner under any interleaving,
// and because no two threads read the same address, every first-read check
// queries a reader set containing at most that reader — so the bloom
// filter's order-sensitive false positives (which CAN differ between
// schedules when readers share a slot) never arise.
func TestParallelDeterministicTotalInvariance(t *testing.T) {
	const (
		threads = 8
		k       = 64 // addresses per consumer thread
		size    = 8
	)
	regions := []Region{{Name: "main", Parent: -1}, {Name: "scatter", Parent: 0, Loop: true}}
	block := func(consumer uint64) uint64 { return 0x10000 + (consumer-1)*k*size }
	body := func(th *Thread) {
		th.InRegion(1, func() {
			if th.ID() == 0 {
				for c := uint64(1); c < threads; c++ {
					for i := uint64(0); i < k; i++ {
						th.Write(block(c)+i*size, size)
					}
				}
			}
			th.Barrier()
			if th.ID() != 0 {
				for i := uint64(0); i < k; i++ {
					th.Read(block(uint64(th.ID()))+i*size, size)
				}
			}
		})
	}

	det, err := Run(threads, regions, body, Options{Parallel: false})
	if err != nil {
		t.Fatal(err)
	}
	// Every consumer reads k*size bytes last written by thread 0; the exact
	// total also proves no bloom false positive ate an event.
	if want := uint64(k * size * (threads - 1)); det.Global.Total() != want {
		t.Fatalf("deterministic total = %d, want %d", det.Global.Total(), want)
	}

	for trial := 0; trial < 3; trial++ {
		par, err := Run(threads, regions, body, Options{Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		if par.Global.Total() != det.Global.Total() {
			t.Fatalf("trial %d: parallel total %d != deterministic total %d",
				trial, par.Global.Total(), det.Global.Total())
		}
		if !reflect.DeepEqual(par.Global.Bytes, det.Global.Bytes) {
			t.Fatalf("trial %d: parallel matrix diverged:\npar: %v\ndet: %v",
				trial, par.Global.Bytes, det.Global.Bytes)
		}
		if par.Dependencies != det.Dependencies {
			t.Fatalf("trial %d: dependency counts diverged: %d vs %d",
				trial, par.Dependencies, det.Dependencies)
		}
	}
}
